package bitio

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestBulkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		width := uint(rng.Intn(65))
		n := rng.Intn(200)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64()
			if width < 64 {
				vals[i] &= 1<<width - 1
			}
		}
		lead := uint(rng.Intn(8)) // random misalignment

		scalar := NewWriter(64)
		scalar.WriteBits(1, lead)
		for _, v := range vals {
			scalar.WriteBits(v, width)
		}
		bulk := NewWriter(64)
		bulk.WriteBits(1, lead)
		bulk.WriteBulk(vals, width)

		sb, bb := scalar.Bytes(), bulk.Bytes()
		if len(sb) != len(bb) {
			t.Fatalf("iter %d: lengths %d vs %d", iter, len(sb), len(bb))
		}
		for i := range sb {
			if sb[i] != bb[i] {
				t.Fatalf("iter %d (width %d, lead %d): byte %d: %02x vs %02x",
					iter, width, lead, i, sb[i], bb[i])
			}
		}

		// Bulk read must recover the values from either stream.
		r := NewReader(bb)
		if _, err := r.ReadBits(lead); err != nil {
			t.Fatal(err)
		}
		got := make([]uint64, n)
		if m, err := r.ReadBulk(got, width); err != nil || m != n {
			t.Fatalf("ReadBulk = %d, %v; want %d, nil", m, err, n)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("iter %d: value %d: got %d want %d", iter, i, got[i], vals[i])
			}
		}
	}
}

// TestWriteBulkGolden pins the exact stream bytes for a known input so a
// regression in the word-store path cannot hide behind a matching scalar bug.
func TestWriteBulkGolden(t *testing.T) {
	w := NewWriter(16)
	w.WriteBulk([]uint64{0b101, 0b010, 0b111, 0b001}, 3)
	// 101 010 111 001 -> 10101011 1001'0000 (final byte zero-padded)
	got := w.Bytes()
	want := []byte{0xab, 0x90}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %x want %x", got, want)
	}

	w = NewWriter(16)
	w.WriteBits(1, 1) // misaligned start
	w.WriteBulk([]uint64{0x3ff, 0x001}, 10)
	// 1 1111111111 0000000001 -> 11111111 11100000 00001'000
	got = w.Bytes()
	want = []byte{0xff, 0xe0, 0x08}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %x want %x", got, want)
		}
	}
}

// TestWriteBulkMidStream interleaves scalar and bulk writes at every
// alignment and verifies the stream stays byte-identical to all-scalar.
func TestWriteBulkMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		scalar, bulk := NewWriter(64), NewWriter(64)
		for seg := 0; seg < 4; seg++ {
			width := uint(1 + rng.Intn(56))
			n := rng.Intn(40)
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64() & (1<<width - 1)
			}
			for _, v := range vals {
				scalar.WriteBits(v, width)
			}
			bulk.WriteBulk(vals, width)
			// A few stray bits between segments shift the alignment.
			stray := uint(rng.Intn(8))
			scalar.WriteBits(0b1011, stray)
			bulk.WriteBits(0b1011, stray)
		}
		sb, bb := scalar.Bytes(), bulk.Bytes()
		if len(sb) != len(bb) {
			t.Fatalf("iter %d: lengths %d vs %d", iter, len(sb), len(bb))
		}
		for i := range sb {
			if sb[i] != bb[i] {
				t.Fatalf("iter %d: byte %d: %02x vs %02x", iter, i, sb[i], bb[i])
			}
		}
	}
}

// TestBulkReadPastEnd pins the short-buffer contract: ReadBulk decodes the
// values that fit completely, reports how many, leaves the position after
// the last decoded value, and returns ErrUnexpectedEOF.
func TestBulkReadPastEnd(t *testing.T) {
	// 16 bits of stream, 7-bit values: exactly 2 fit, the third does not.
	r := NewReader([]byte{0xff, 0xff})
	out := []uint64{99, 99, 99}
	n, err := r.ReadBulk(out, 7)
	if err != ErrUnexpectedEOF {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
	if n != 2 {
		t.Errorf("n = %d, want 2", n)
	}
	if out[0] != 0x7f || out[1] != 0x7f {
		t.Errorf("decoded prefix = %v, want 0x7f 0x7f", out[:2])
	}
	if out[2] != 99 {
		t.Errorf("out[2] overwritten: %d", out[2])
	}
	// Position sits after the 2 decoded values; the remaining 2 bits read
	// normally.
	if got := r.BitPos(); got != 14 {
		t.Errorf("BitPos = %d, want 14", got)
	}
	if got, err := r.ReadBits(2); err != nil || got != 3 {
		t.Errorf("tail read: %d, %v", got, err)
	}
}

// TestBulkReadPastEndKernelAligned is the same contract through the kernel
// path: byte-aligned start, enough values for blocks, stream cut short.
func TestBulkReadPastEndKernelAligned(t *testing.T) {
	w := NewWriter(256)
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = uint64(i) & 0x1f
	}
	w.WriteBulk(vals, 5)
	data := w.Bytes() // 500 bits -> 63 bytes: 100 values, then padding
	r := NewReader(data)
	out := make([]uint64, 120)
	n, err := r.ReadBulk(out, 5)
	if err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if want := len(data) * 8 / 5; n != want {
		t.Fatalf("n = %d, want %d", n, want)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("value %d: got %d want %d", i, out[i], vals[i])
		}
	}
	if got := r.BitPos(); got != n*5 {
		t.Fatalf("BitPos = %d, want %d", got, n*5)
	}
}

func TestBulkZeroWidth(t *testing.T) {
	r := NewReader(nil)
	out := []uint64{7, 7}
	n, err := r.ReadBulk(out, 0)
	if err != nil || n != 2 {
		t.Fatalf("ReadBulk = %d, %v", n, err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("out = %v", out)
	}
}

// benchWidths is the sweep the kernel benchmarks run over; BENCH_kernels.json
// records the scalar-vs-kernel ratio for each.
var benchWidths = []uint{1, 4, 7, 8, 12, 16, 20, 32, 48, 64}

func benchVals(width uint, n int) []uint64 {
	vals := make([]uint64, n)
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<width - 1
	}
	for i := range vals {
		vals[i] = (uint64(i)*0x9e3779b97f4a7c15 + 1) & mask
	}
	return vals
}

func BenchmarkWriteBulk(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%02d", width), func(b *testing.B) {
			vals := benchVals(width, 1024)
			w := NewWriter(1 << 14)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Reset()
				w.WriteBulk(vals, width)
			}
		})
	}
}

// BenchmarkWriteBulkUnaligned starts the stream 3 bits in — the shape of the
// encodeBOS center plane, which sits after the positional bitmap — so it
// exercises the staged unaligned write path rather than the aligned kernels.
func BenchmarkWriteBulkUnaligned(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%02d", width), func(b *testing.B) {
			vals := benchVals(width, 1024)
			w := NewWriter(1 << 14)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Reset()
				w.WriteBits(5, 3)
				w.WriteBulk(vals, width)
			}
		})
	}
}

// BenchmarkWriteBulkUnalignedScalar is the same shape through the pre-kernel
// accumulator (the "before" column for the staged write path).
func BenchmarkWriteBulkUnalignedScalar(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%02d", width), func(b *testing.B) {
			vals := benchVals(width, 1024)
			w := NewWriter(1 << 14)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Reset()
				w.WriteBits(5, 3)
				w.writeBulkScalar(vals, width)
			}
		})
	}
}

// BenchmarkWriteBulkScalar measures the pre-kernel accumulator path on the
// same inputs (the "before" column of BENCH_kernels.json).
func BenchmarkWriteBulkScalar(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%02d", width), func(b *testing.B) {
			vals := benchVals(width, 1024)
			w := NewWriter(1 << 14)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Reset()
				w.writeBulkScalar(vals, width)
			}
		})
	}
}

func BenchmarkReadBulk(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%02d", width), func(b *testing.B) {
			vals := benchVals(width, 1024)
			w := NewWriter(1 << 14)
			w.WriteBulk(vals, width)
			data := w.Bytes()
			out := make([]uint64, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := NewReader(data)
				if _, err := r.ReadBulk(out, width); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadBulkScalar measures the pre-kernel per-value load loop on the
// same streams (the "before" column of BENCH_kernels.json).
func BenchmarkReadBulkScalar(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%02d", width), func(b *testing.B) {
			vals := benchVals(width, 1024)
			w := NewWriter(1 << 14)
			w.WriteBulk(vals, width)
			data := w.Bytes()
			out := make([]uint64, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := NewReader(data)
				if err := r.readBulkScalar(out, width); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadBulkInt64(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%02d", width), func(b *testing.B) {
			vals := benchVals(width, 1024)
			w := NewWriter(1 << 14)
			w.WriteBulk(vals, width)
			data := w.Bytes()
			out := make([]int64, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := NewReader(data)
				if err := r.ReadBulkInt64(out, width, 12345); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadBulkInt64Unaligned starts the stream 3 bits in — the shape of
// every BOS inlier plane, which sits after the positional bitmap — so it
// exercises the realign-staging kernel path rather than the direct one.
func BenchmarkReadBulkInt64Unaligned(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%02d", width), func(b *testing.B) {
			vals := benchVals(width, 1024)
			w := NewWriter(1 << 14)
			w.WriteBits(5, 3)
			w.WriteBulk(vals, width)
			data := w.Bytes()
			out := make([]int64, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := NewReader(data)
				if _, err := r.ReadBits(3); err != nil {
					b.Fatal(err)
				}
				if err := r.ReadBulkInt64(out, width, 12345); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadBulkInt64Scalar(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%02d", width), func(b *testing.B) {
			vals := benchVals(width, 1024)
			w := NewWriter(1 << 14)
			w.WriteBulk(vals, width)
			data := w.Bytes()
			out := make([]int64, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := NewReader(data)
				if err := r.readBulkInt64Scalar(out, width, 12345); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
