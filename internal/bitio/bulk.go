package bitio

// Bulk fixed-width paths for the hot loops of block packing: same stream
// layout as repeated WriteBits/ReadBits calls, but with the accumulator kept
// in a register and bounds checked once per run instead of once per value.
// Widths above 56 fall back to the scalar path (the accumulator needs
// width+7 bits of headroom).

const bulkMaxWidth = 56

// WriteBulk appends every value at the given width.
func (w *Writer) WriteBulk(vals []uint64, width uint) {
	if width == 0 || len(vals) == 0 {
		return
	}
	if width > bulkMaxWidth {
		for _, v := range vals {
			w.WriteBits(v, width)
		}
		return
	}
	acc, nb := w.cur, w.nbits
	mask := uint64(1)<<width - 1
	for _, v := range vals {
		acc = acc<<width | (v & mask)
		nb += width
		for nb >= 8 {
			nb -= 8
			w.buf = append(w.buf, byte(acc>>nb))
		}
		acc &= 1<<nb - 1 // nb < 8: keep headroom for the next shift
	}
	w.cur, w.nbits = acc, nb
}

// ReadBulk fills out with len(out) consecutive values at the given width.
func (r *Reader) ReadBulk(out []uint64, width uint) error {
	if len(out) == 0 {
		return nil
	}
	if width > 64 {
		return ErrOverflow
	}
	need := len(out) * int(width)
	if r.pos+need > len(r.data)*8 {
		return ErrUnexpectedEOF
	}
	if width == 0 {
		for i := range out {
			out[i] = 0
		}
		return nil
	}
	if width > bulkMaxWidth {
		for i := range out {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
	var acc uint64
	var nb uint
	pos := r.pos
	// Fold in the partial leading byte so the main loop is byte-aligned.
	if o := uint(pos & 7); o != 0 {
		acc = uint64(r.data[pos>>3]) & (1<<(8-o) - 1)
		nb = 8 - o
		pos += int(nb)
	}
	bytePos := pos >> 3
	mask := uint64(1)<<width - 1
	for i := range out {
		for nb < width {
			acc = acc<<8 | uint64(r.data[bytePos])
			bytePos++
			nb += 8
		}
		nb -= width
		out[i] = acc >> nb & mask
		acc &= 1<<nb - 1
	}
	r.pos = bytePos*8 - int(nb)
	return nil
}

// ReadBulkInt64 reads len(out) consecutive width-bit offsets and stores
// base+offset as int64 — the fused frame-of-reference decode loop shared by
// the block decoders (saves a scratch buffer and a second pass).
func (r *Reader) ReadBulkInt64(out []int64, width uint, base uint64) error {
	if len(out) == 0 {
		return nil
	}
	if width > 64 {
		return ErrOverflow
	}
	need := len(out) * int(width)
	if r.pos+need > len(r.data)*8 {
		return ErrUnexpectedEOF
	}
	if width == 0 {
		for i := range out {
			out[i] = int64(base)
		}
		return nil
	}
	if width > bulkMaxWidth {
		for i := range out {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[i] = int64(base + v)
		}
		return nil
	}
	var acc uint64
	var nb uint
	pos := r.pos
	if o := uint(pos & 7); o != 0 {
		acc = uint64(r.data[pos>>3]) & (1<<(8-o) - 1)
		nb = 8 - o
		pos += int(nb)
	}
	bytePos := pos >> 3
	mask := uint64(1)<<width - 1
	for i := range out {
		for nb < width {
			acc = acc<<8 | uint64(r.data[bytePos])
			bytePos++
			nb += 8
		}
		nb -= width
		out[i] = int64(base + (acc>>nb)&mask)
		acc &= 1<<nb - 1
	}
	r.pos = bytePos*8 - int(nb)
	return nil
}
