package bitio

import "encoding/binary"

// Bulk fixed-width paths for the hot loops of block packing: same stream
// layout as repeated WriteBits/ReadBits calls, but with per-value work cut
// to one unaligned 8-byte load. A value of width <= 56 starting at any bit
// offset o (0..7) occupies at most o+56 <= 63 bits, so it always fits in
// the 8 bytes beginning at its first byte: load big-endian, shift right,
// mask. Widths above 56 fall back to the scalar path, as does the tail of
// the buffer where an 8-byte load would run past the end.

const bulkMaxWidth = 56

// WriteBulk appends every value at the given width.
//
//bos:hotpath
func (w *Writer) WriteBulk(vals []uint64, width uint) {
	if width == 0 || len(vals) == 0 {
		return
	}
	if width > bulkMaxWidth {
		for _, v := range vals {
			w.WriteBits(v, width)
		}
		return
	}
	acc, nb := w.cur, w.nbits
	mask := uint64(1)<<width - 1
	for _, v := range vals {
		acc = acc<<width | (v & mask)
		nb += width
		for nb >= 8 {
			nb -= 8
			w.buf = append(w.buf, byte(acc>>nb))
		}
		acc &= 1<<nb - 1 // nb < 8: keep headroom for the next shift
	}
	w.cur, w.nbits = acc, nb
}

// ReadBulk fills out with len(out) consecutive values at the given width.
//
//bos:hotpath
func (r *Reader) ReadBulk(out []uint64, width uint) error {
	if len(out) == 0 {
		return nil
	}
	if width > 64 {
		return ErrOverflow
	}
	need := len(out) * int(width)
	if r.pos+need > len(r.data)*8 {
		return ErrUnexpectedEOF
	}
	if width == 0 {
		for i := range out {
			out[i] = 0
		}
		return nil
	}
	if width > bulkMaxWidth {
		for i := range out {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
	mask := uint64(1)<<width - 1
	pos := r.pos
	i := 0
	for ; i < len(out) && pos>>3+8 <= len(r.data); i++ {
		o := uint(pos) & 7
		w := binary.BigEndian.Uint64(r.data[pos>>3:])
		out[i] = w >> (64 - o - width) & mask
		pos += int(width)
	}
	r.pos = pos
	for ; i < len(out); i++ { // last few values near the buffer end
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// ReadBulkInt64 reads len(out) consecutive width-bit offsets and stores
// base+offset as int64 — the fused frame-of-reference decode loop shared by
// the block decoders (saves a scratch buffer and a second pass).
//
//bos:hotpath
func (r *Reader) ReadBulkInt64(out []int64, width uint, base uint64) error {
	if len(out) == 0 {
		return nil
	}
	if width > 64 {
		return ErrOverflow
	}
	need := len(out) * int(width)
	if r.pos+need > len(r.data)*8 {
		return ErrUnexpectedEOF
	}
	if width == 0 {
		for i := range out {
			out[i] = int64(base)
		}
		return nil
	}
	if width > bulkMaxWidth {
		for i := range out {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[i] = int64(base + v)
		}
		return nil
	}
	mask := uint64(1)<<width - 1
	pos := r.pos
	i := 0
	for ; i < len(out) && pos>>3+8 <= len(r.data); i++ {
		o := uint(pos) & 7
		w := binary.BigEndian.Uint64(r.data[pos>>3:])
		out[i] = int64(base + w>>(64-o-width)&mask)
		pos += int(width)
	}
	r.pos = pos
	for ; i < len(out); i++ { // last few values near the buffer end
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		out[i] = int64(base + v)
	}
	return nil
}
