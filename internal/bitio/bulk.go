package bitio

import "encoding/binary"

// Bulk fixed-width paths for the hot loops of block packing: same stream
// layout as repeated WriteBits/ReadBits calls, but executed block-at-a-time.
// When the stream position is byte-aligned and at least 8 values remain, the
// front doors dispatch into the width-specialized kernels of
// kernels_*_gen.go (64 values per call, 8 for the tail; whole-word
// loads/stores, no per-value width dispatch, one bounds check per block).
// A bit-unaligned read of 8+ values — the BOS inlier plane sits after the
// n+outliers-bit bitmap, so this is the common decode case — stages each
// block through a stack buffer shifted to byte alignment (one word-sized
// shift/or per 8 stream bytes) and runs the aligned kernel on that, for the
// widths where that beats the scalar loop (see stageUnaligned). Short runs,
// unaligned writes and buffer tails take the scalar paths below: a value of
// width <= 56 starting at any bit offset o (0..7) occupies at most o+56 <=
// 63 bits, so it always fits in the 8 bytes beginning at its first byte —
// load big-endian, shift, mask. Widths above 56 fall back to per-value
// ReadBits/WriteBits there, as does the tail of the read buffer where an
// 8-byte load would run past the end.

const bulkMaxWidth = 56

// WriteBulk appends every value at the given width. The stream is
// byte-identical to calling WriteBits for each value (the pack kernels mask
// each value to `width` bits exactly like WriteBits does).
//
//bos:hotpath
func (w *Writer) WriteBulk(vals []uint64, width uint) {
	if width == 0 || len(vals) == 0 {
		return
	}
	if width > 64 {
		// Invalid width; preserve the historical WriteBits-per-value
		// behavior rather than guessing a clamp.
		for _, v := range vals {
			w.WriteBits(v, width)
		}
		return
	}
	i := 0
	if w.nbits == 0 && len(vals) >= kernelTail {
		// Kernel path: byte-aligned, so blocks store whole big-endian
		// words directly into the buffer. An 8-value tail block stores
		// ceil(width/8) full words for width logical bytes; the slack
		// bytes beyond the logical length are zeros that later writes
		// overwrite (every logical byte is still written exactly once).
		need := len(w.buf) + (len(vals)*int(width))>>3 + 8
		buf := w.buf
		if cap(buf) >= need {
			buf = buf[:need]
		} else {
			buf = make([]byte, need)
			copy(buf, w.buf)
		}
		k := len(w.buf)
		for ; i+kernelBlock <= len(vals); i += kernelBlock {
			kernelPack64(width, (*[64]uint64)(vals[i:]), buf[k:])
			k += int(width) * 8
		}
		for ; i+kernelTail <= len(vals); i += kernelTail {
			kernelPack8(width, (*[8]uint64)(vals[i:]), buf[k:])
			k += int(width)
		}
		w.buf = buf[:k]
	} else if len(vals) >= kernelTail {
		// Bit-unaligned: the mirror of the read side's staging. Pack each
		// block byte-aligned into a stack buffer with the same kernels,
		// then shift it into the stream one word at a time (one shift/or
		// pair per 8 output bytes). This is how encodeBOS center runs —
		// which always sit after the n+outliers-bit bitmap — reach the
		// kernels; the scalar accumulator only keeps the sub-8-value tail.
		i = w.writeBulkStaged(vals, width)
	}
	if i < len(vals) {
		w.writeBulkScalar(vals[i:], width)
	}
}

// writeBulkStaged appends whole kernel blocks of vals at the given width to
// a bit-unaligned stream (0 < nbits < 8) and returns how many values it
// consumed. Each block is packed byte-aligned into a stack buffer by the
// width kernels, then merged into the stream shifted right by the pending
// bit count: emit = carry | word>>o, next carry = word<<(64-o). Every block
// spans a whole number of bytes (64*W bits, or 8*W bits for tails), so the
// pending bit count is invariant across blocks; a tail block whose last
// word is only partially logical advances by the logical bytes and keeps
// the o carry bits that follow them (the staged slack beyond is zero).
//
//bos:hotpath
func (w *Writer) writeBulkStaged(vals []uint64, width uint) int {
	o := w.nbits
	need := len(w.buf) + (int(o)+len(vals)*int(width))>>3 + 16
	buf := w.buf
	if cap(buf) >= need {
		buf = buf[:need]
	} else {
		buf = make([]byte, need)
		copy(buf, w.buf)
	}
	k := len(w.buf)
	carry := w.cur << (64 - o)
	var tmp [kernelBlock * 8]byte
	i := 0
	bb := int(width) * 8
	for ; i+kernelBlock <= len(vals); i += kernelBlock {
		kernelPack64(width, (*[64]uint64)(vals[i:]), tmp[:])
		for j := 0; j < bb; j += 8 {
			x := binary.BigEndian.Uint64(tmp[j:])
			binary.BigEndian.PutUint64(buf[k:], carry|x>>o)
			carry = x << (64 - o)
			k += 8
		}
	}
	for lb := int(width); i+kernelTail <= len(vals); i += kernelTail {
		kernelPack8(width, (*[8]uint64)(vals[i:]), tmp[:])
		for j := 0; j < lb; j += 8 {
			x := binary.BigEndian.Uint64(tmp[j:])
			emit := carry | x>>o
			binary.BigEndian.PutUint64(buf[k:], emit)
			if adv := lb - j; adv < 8 {
				// Partial last word: x's bytes past the logical length
				// are kernel slack zeros, so the o bits that follow the
				// logical bytes are the only live carry. The stored
				// slack bytes sit beyond k and are overwritten by the
				// next store or left past the final length.
				carry = emit << (uint(adv) * 8)
				k += adv
			} else {
				carry = x << (64 - o)
				k += 8
			}
		}
	}
	w.buf = buf[:k]
	w.cur = carry >> (64 - o)
	return i
}

// WriteBulkInt64 appends (uint64(v) - base) & (2^width - 1) for every value
// — the fused frame-of-reference encode loop shared by the block encoders.
// The stream is byte-identical to computing the offsets by hand and calling
// WriteBulk (or WriteBits per value); fusing saves callers a heap-allocated
// scratch slice.
//
//bos:hotpath
func (w *Writer) WriteBulkInt64(vals []int64, base uint64, width uint) {
	var tmp [kernelBlock]uint64
	for len(vals) > 0 {
		n := len(vals)
		if n > kernelBlock {
			n = kernelBlock
		}
		for i := 0; i < n; i++ {
			tmp[i] = uint64(vals[i]) - base
		}
		w.WriteBulk(tmp[:n], width)
		vals = vals[n:]
	}
}

// writeBulkScalar is the pre-kernel WriteBulk body: a left-aligned 64-bit
// accumulator window flushed with one big-endian store per 8 output bytes.
// It handles any starting bit alignment; widths above 56 go through
// WriteBits per value. Kept verbatim as the fallback (and as the baseline
// the differential tests and benchmarks compare the kernels against).
//
//bos:hotpath
func (w *Writer) writeBulkScalar(vals []uint64, width uint) {
	if width > bulkMaxWidth {
		for _, v := range vals {
			w.WriteBits(v, width)
		}
		return
	}
	// Values accumulate left-aligned in a 64-bit window; every time the
	// window fills, one big-endian 8-byte store flushes it. That is one
	// byte swap per 8 output bytes instead of per value, and every output
	// byte is written exactly once, so the buffer needs no pre-zeroing.
	// Stores are contiguous from k; the final store's trailing bytes are
	// zero (the window's unused low bits) and fall beyond the new length,
	// so the +8 slack keeps it in bounds.
	total := len(w.buf)*8 + int(w.nbits) + len(vals)*int(width)
	need := total>>3 + 8
	buf := w.buf
	if cap(buf) >= need {
		buf = buf[:need]
	} else {
		buf = make([]byte, need)
		copy(buf, w.buf)
	}
	k := len(w.buf)
	var acc uint64
	used := w.nbits
	if used != 0 {
		acc = w.cur << (64 - used)
	}
	mask := uint64(1)<<width - 1
	for _, v := range vals {
		v &= mask
		if free := 64 - used; width <= free {
			acc |= v << (free - width)
			used += width
		} else {
			binary.BigEndian.PutUint64(buf[k:], acc|v>>(width-free))
			k += 8
			used = width - free
			acc = v << (64 - used)
		}
		if used == 64 {
			binary.BigEndian.PutUint64(buf[k:], acc)
			k += 8
			acc, used = 0, 0
		}
	}
	if used != 0 {
		binary.BigEndian.PutUint64(buf[k:], acc)
		k += int(used) >> 3
	}
	w.buf = buf[:k]
	w.nbits = used & 7
	w.cur = 0
	if w.nbits != 0 {
		w.cur = (acc >> (64 - used)) & (1<<w.nbits - 1)
	}
}

// ReadBulk fills out with consecutive values at the given width and reports
// how many it decoded. On success that is len(out). When the stream is too
// short it decodes every value that fits completely, leaves the position
// after the last decoded value, and returns the count alongside
// ErrUnexpectedEOF — callers no longer need to re-derive the decoded prefix
// from BitPos. A width above 64 decodes nothing and returns ErrOverflow.
//
//bos:hotpath
func (r *Reader) ReadBulk(out []uint64, width uint) (int, error) {
	if width > 64 {
		return 0, ErrOverflow
	}
	if len(out) == 0 {
		return 0, nil
	}
	if width == 0 {
		for i := range out {
			out[i] = 0
		}
		return len(out), nil
	}
	n := len(out)
	var short bool
	if avail := len(r.data)*8 - r.pos; n*int(width) > avail {
		n = avail / int(width)
		short = true
	}
	out = out[:n]
	i := 0
	if r.pos&7 == 0 && n >= kernelTail {
		data := r.data[r.pos>>3:]
		k := 0
		for ; i+kernelBlock <= n; i += kernelBlock {
			kernelUnpack64(width, data[k:], (*[64]uint64)(out[i:]))
			k += int(width) * 8
		}
		for need := tailBytes(width); i+kernelTail <= n && k+need <= len(data); i += kernelTail {
			kernelUnpack8(width, data[k:], (*[8]uint64)(out[i:]))
			k += int(width)
		}
		r.pos += i * int(width)
	} else if n >= kernelTail && stageUnaligned(width) {
		// Unaligned: 64 values span exactly width*8 bytes and 8 values
		// exactly width bytes, so the sub-byte offset repeats block to
		// block. Stage each block through a stack buffer shifted to byte
		// alignment (one word-sized shift/or per 8 stream bytes) and run
		// the aligned kernel on it. The staging arrays are scoped so a
		// short run only pays for zeroing the 64-byte one.
		o := uint(r.pos) & 7
		k := r.pos >> 3
		if n >= kernelBlock {
			var tmp [kernelBlock * 8]byte
			bb := int(width) * 8
			for ; i+kernelBlock <= n && k+bb < len(r.data); i += kernelBlock {
				realign(r.data, k, o, tmp[:bb])
				kernelUnpack64(width, tmp[:bb], (*[64]uint64)(out[i:]))
				k += bb
			}
		}
		var tmp8 [kernelTail * 8]byte
		for need := tailBytes(width); i+kernelTail <= n && k+need < len(r.data); i += kernelTail {
			realign(r.data, k, o, tmp8[:need])
			kernelUnpack8(width, tmp8[:need], (*[8]uint64)(out[i:]))
			k += int(width)
		}
		r.pos += i * int(width)
	}
	if err := r.readBulkScalar(out[i:], width); err != nil {
		return i, err // unreachable: the prefix is sized to fit
	}
	if short {
		return n, ErrUnexpectedEOF
	}
	return n, nil
}

// stageUnaligned reports whether the staged-realignment path beats the
// scalar fallback for a bit-unaligned read at the given width. Staging
// copies one stream byte per value per 8 values before unpacking, so in the
// mid-range (33..56 bits) the copy alone costs as much as the scalar loop's
// single unaligned load per value and scalar wins; at 32 and below the
// kernel's shared loads amortize the copy, and above 56 the scalar path
// itself degrades to per-value ReadBits, so staging wins on both sides.
func stageUnaligned(width uint) bool {
	return width <= 32 || width > bulkMaxWidth
}

// realign copies len(dst) stream bytes starting o bits (1..7) into data[k]
// out to dst, shifted left so dst begins at a byte boundary. len(dst) must
// be a multiple of 8 and data[k+len(dst)] must exist: the byte after the
// window feeds the final word's carry.
//
//bos:hotpath
func realign(data []byte, k int, o uint, dst []byte) {
	_ = data[k+len(dst)]
	for j := 0; j < len(dst); j += 8 {
		w := binary.BigEndian.Uint64(data[k+j:])<<o | uint64(data[k+j+8])>>(8-o)
		binary.BigEndian.PutUint64(dst[j:], w)
	}
}

// readBulkScalar is the pre-kernel ReadBulk inner loop: one unaligned
// 8-byte big-endian load per value while the buffer allows it, per-value
// ReadBits near the end and for widths above 56. The caller guarantees
// len(out)*width bits remain. Kept verbatim as the unaligned/short-run
// fallback and the differential-test baseline.
//
//bos:hotpath
func (r *Reader) readBulkScalar(out []uint64, width uint) error {
	if width > bulkMaxWidth {
		for i := range out {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
	mask := uint64(1)<<width - 1
	pos := r.pos
	i := 0
	for ; i < len(out) && pos>>3+8 <= len(r.data); i++ {
		o := uint(pos) & 7
		w := binary.BigEndian.Uint64(r.data[pos>>3:])
		out[i] = w >> (64 - o - width) & mask
		pos += int(width)
	}
	r.pos = pos
	for ; i < len(out); i++ { // last few values near the buffer end
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// ReadBulkInt64 reads len(out) consecutive width-bit offsets and stores
// base+offset as int64 — the fused frame-of-reference decode loop shared by
// the block decoders (saves a scratch buffer and a second pass). Unlike
// ReadBulk it is all-or-nothing: a stream too short for len(out) values
// returns ErrUnexpectedEOF without decoding anything or moving the position.
//
//bos:hotpath
func (r *Reader) ReadBulkInt64(out []int64, width uint, base uint64) error {
	if len(out) == 0 {
		return nil
	}
	if width > 64 {
		return ErrOverflow
	}
	if r.pos+len(out)*int(width) > len(r.data)*8 {
		return ErrUnexpectedEOF
	}
	if width == 0 {
		for i := range out {
			out[i] = int64(base)
		}
		return nil
	}
	i := 0
	if r.pos&7 == 0 && len(out) >= kernelTail {
		data := r.data[r.pos>>3:]
		k := 0
		for ; i+kernelBlock <= len(out); i += kernelBlock {
			kernelUnpack64Int64(width, data[k:], (*[64]int64)(out[i:]), base)
			k += int(width) * 8
		}
		for need := tailBytes(width); i+kernelTail <= len(out) && k+need <= len(data); i += kernelTail {
			kernelUnpack8Int64(width, data[k:], (*[8]int64)(out[i:]), base)
			k += int(width)
		}
		r.pos += i * int(width)
	} else if len(out) >= kernelTail && stageUnaligned(width) {
		// Unaligned staging, as in ReadBulk: shift each block to byte
		// alignment on the stack, then run the aligned kernel.
		o := uint(r.pos) & 7
		k := r.pos >> 3
		if len(out) >= kernelBlock {
			var tmp [kernelBlock * 8]byte
			bb := int(width) * 8
			for ; i+kernelBlock <= len(out) && k+bb < len(r.data); i += kernelBlock {
				realign(r.data, k, o, tmp[:bb])
				kernelUnpack64Int64(width, tmp[:bb], (*[64]int64)(out[i:]), base)
				k += bb
			}
		}
		var tmp8 [kernelTail * 8]byte
		for need := tailBytes(width); i+kernelTail <= len(out) && k+need < len(r.data); i += kernelTail {
			realign(r.data, k, o, tmp8[:need])
			kernelUnpack8Int64(width, tmp8[:need], (*[8]int64)(out[i:]), base)
			k += int(width)
		}
		r.pos += i * int(width)
	}
	return r.readBulkInt64Scalar(out[i:], width, base)
}

// readBulkInt64Scalar is the pre-kernel ReadBulkInt64 inner loop; see
// readBulkScalar.
//
//bos:hotpath
func (r *Reader) readBulkInt64Scalar(out []int64, width uint, base uint64) error {
	if width > bulkMaxWidth {
		for i := range out {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[i] = int64(base + v)
		}
		return nil
	}
	mask := uint64(1)<<width - 1
	pos := r.pos
	i := 0
	for ; i < len(out) && pos>>3+8 <= len(r.data); i++ {
		o := uint(pos) & 7
		w := binary.BigEndian.Uint64(r.data[pos>>3:])
		out[i] = int64(base + w>>(64-o-width)&mask)
		pos += int(width)
	}
	r.pos = pos
	for ; i < len(out); i++ { // last few values near the buffer end
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		out[i] = int64(base + v)
	}
	return nil
}
