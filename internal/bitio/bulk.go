package bitio

import "encoding/binary"

// Bulk fixed-width paths for the hot loops of block packing: same stream
// layout as repeated WriteBits/ReadBits calls, but with per-value work cut
// to one unaligned 8-byte load (read) or one load-or-store pair (write). A
// value of width <= 56 starting at any bit offset o (0..7) occupies at most
// o+56 <= 63 bits, so it always fits in the 8 bytes beginning at its first
// byte: load big-endian, shift, mask. Widths above 56 fall back to the
// scalar path, as does the tail of the read buffer where an 8-byte load
// would run past the end.

const bulkMaxWidth = 56

// WriteBulk appends every value at the given width. The stream is
// byte-identical to calling WriteBits for each value.
//
//bos:hotpath
func (w *Writer) WriteBulk(vals []uint64, width uint) {
	if width == 0 || len(vals) == 0 {
		return
	}
	if width > bulkMaxWidth {
		for _, v := range vals {
			w.WriteBits(v, width)
		}
		return
	}
	// Values accumulate left-aligned in a 64-bit window; every time the
	// window fills, one big-endian 8-byte store flushes it. That is one
	// byte swap per 8 output bytes instead of per value, and every output
	// byte is written exactly once, so the buffer needs no pre-zeroing.
	// Stores are contiguous from k; the final store's trailing bytes are
	// zero (the window's unused low bits) and fall beyond the new length,
	// so the +8 slack keeps it in bounds.
	total := len(w.buf)*8 + int(w.nbits) + len(vals)*int(width)
	need := total>>3 + 8
	buf := w.buf
	if cap(buf) >= need {
		buf = buf[:need]
	} else {
		buf = make([]byte, need)
		copy(buf, w.buf)
	}
	k := len(w.buf)
	var acc uint64
	used := w.nbits
	if used != 0 {
		acc = w.cur << (64 - used)
	}
	mask := uint64(1)<<width - 1
	for _, v := range vals {
		v &= mask
		if free := 64 - used; width <= free {
			acc |= v << (free - width)
			used += width
		} else {
			binary.BigEndian.PutUint64(buf[k:], acc|v>>(width-free))
			k += 8
			used = width - free
			acc = v << (64 - used)
		}
		if used == 64 {
			binary.BigEndian.PutUint64(buf[k:], acc)
			k += 8
			acc, used = 0, 0
		}
	}
	if used != 0 {
		binary.BigEndian.PutUint64(buf[k:], acc)
		k += int(used) >> 3
	}
	w.buf = buf[:k]
	w.nbits = used & 7
	w.cur = 0
	if w.nbits != 0 {
		w.cur = (acc >> (64 - used)) & (1<<w.nbits - 1)
	}
}

// ReadBulk fills out with len(out) consecutive values at the given width.
//
//bos:hotpath
func (r *Reader) ReadBulk(out []uint64, width uint) error {
	if len(out) == 0 {
		return nil
	}
	if width > 64 {
		return ErrOverflow
	}
	need := len(out) * int(width)
	if r.pos+need > len(r.data)*8 {
		return ErrUnexpectedEOF
	}
	if width == 0 {
		for i := range out {
			out[i] = 0
		}
		return nil
	}
	if width > bulkMaxWidth {
		for i := range out {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
	mask := uint64(1)<<width - 1
	pos := r.pos
	i := 0
	for ; i < len(out) && pos>>3+8 <= len(r.data); i++ {
		o := uint(pos) & 7
		w := binary.BigEndian.Uint64(r.data[pos>>3:])
		out[i] = w >> (64 - o - width) & mask
		pos += int(width)
	}
	r.pos = pos
	for ; i < len(out); i++ { // last few values near the buffer end
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// ReadBulkInt64 reads len(out) consecutive width-bit offsets and stores
// base+offset as int64 — the fused frame-of-reference decode loop shared by
// the block decoders (saves a scratch buffer and a second pass).
//
//bos:hotpath
func (r *Reader) ReadBulkInt64(out []int64, width uint, base uint64) error {
	if len(out) == 0 {
		return nil
	}
	if width > 64 {
		return ErrOverflow
	}
	need := len(out) * int(width)
	if r.pos+need > len(r.data)*8 {
		return ErrUnexpectedEOF
	}
	if width == 0 {
		for i := range out {
			out[i] = int64(base)
		}
		return nil
	}
	if width > bulkMaxWidth {
		for i := range out {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[i] = int64(base + v)
		}
		return nil
	}
	mask := uint64(1)<<width - 1
	pos := r.pos
	i := 0
	for ; i < len(out) && pos>>3+8 <= len(r.data); i++ {
		o := uint(pos) & 7
		w := binary.BigEndian.Uint64(r.data[pos>>3:])
		out[i] = int64(base + w>>(64-o-width)&mask)
		pos += int(width)
	}
	r.pos = pos
	for ; i < len(out); i++ { // last few values near the buffer end
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		out[i] = int64(base + v)
	}
	return nil
}
