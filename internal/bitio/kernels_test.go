package bitio

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
)

// Differential tests for the generated kernels: for every width 1..64 and a
// ladder of lengths around the 64-value block and 8-value tail boundaries,
// the kernel-dispatched front doors must produce bit-exact streams (pack)
// and values (unpack) compared to the pre-existing scalar paths, at every
// starting alignment. This is the byte-identity guarantee: a stream written
// before the kernels existed decodes identically, and a stream written
// through the kernels is indistinguishable from one written by WriteBits.

var diffLengths = []int{0, 1, 7, 8, 63, 64, 65, 1000}

// diffValues returns deterministic test vectors for one width/length:
// random values, plus the boundary patterns (all zeros, all ones, alternating
// min/max) that stress carry propagation across word seams.
func diffValues(rng *rand.Rand, width uint, n int) [][]uint64 {
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<width - 1
	}
	random := make([]uint64, n)
	unmasked := make([]uint64, n) // garbage above the width: pack must mask
	ones := make([]uint64, n)
	alt := make([]uint64, n)
	for i := range random {
		v := rng.Uint64()
		random[i] = v & mask
		unmasked[i] = v
		ones[i] = mask
		if i%2 == 0 {
			alt[i] = mask
		}
	}
	return [][]uint64{random, unmasked, ones, alt, make([]uint64, n)}
}

func TestKernelsDifferentialExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for width := uint(1); width <= 64; width++ {
		for _, n := range diffLengths {
			for vi, vals := range diffValues(rng, width, n) {
				// Every byte phase: the staged write path merges aligned
				// kernel output into the stream at any pending-bit offset,
				// so all seven misalignments must be byte-identical too.
				for lead := uint(0); lead < 8; lead++ {
					// Pack: scalar baseline vs kernel front door.
					scalar := NewWriter(64)
					scalar.WriteBits(1, lead)
					scalar.writeBulkScalarForTest(vals, width)
					kernel := NewWriter(64)
					kernel.WriteBits(1, lead)
					kernel.WriteBulk(vals, width)
					sb, kb := scalar.Bytes(), kernel.Bytes()
					if !bytes.Equal(sb, kb) {
						t.Fatalf("width %d n %d vec %d lead %d: pack streams differ", width, n, vi, lead)
					}

					// Unpack: kernel front door vs scalar loop, both value
					// and fused-int64 forms.
					mask := ^uint64(0)
					if width < 64 {
						mask = 1<<width - 1
					}
					r := NewReader(kb)
					if _, err := r.ReadBits(lead); err != nil {
						t.Fatal(err)
					}
					got := make([]uint64, n)
					if m, err := r.ReadBulk(got, width); err != nil || m != n {
						t.Fatalf("width %d n %d: ReadBulk = %d, %v", width, n, m, err)
					}
					for i := range vals {
						if got[i] != vals[i]&mask {
							t.Fatalf("width %d n %d vec %d lead %d: value %d: got %#x want %#x",
								width, n, vi, lead, i, got[i], vals[i]&mask)
						}
					}

					r = NewReader(kb)
					if _, err := r.ReadBits(lead); err != nil {
						t.Fatal(err)
					}
					const base = uint64(1) << 33
					got64 := make([]int64, n)
					if err := r.ReadBulkInt64(got64, width, base); err != nil {
						t.Fatalf("width %d n %d: ReadBulkInt64: %v", width, n, err)
					}
					for i := range vals {
						if want := int64(base + vals[i]&mask); got64[i] != want {
							t.Fatalf("width %d n %d vec %d lead %d: int64 value %d: got %d want %d",
								width, n, vi, lead, i, got64[i], want)
						}
					}

					// RunReader: the same stream read run-fused, split into
					// varying short chunks so both the gather kernels and the
					// above-threshold bulk delegation fire, with resume
					// points between chunks.
					r = NewReader(kb)
					if _, err := r.ReadBits(lead); err != nil {
						t.Fatal(err)
					}
					rr := r.Run()
					gotRun := make([]int64, n)
					for lo := 0; lo < n; {
						step := 3 + lo%9 // 3..11 straddles kernelTail
						if lo+step > n {
							step = n - lo
						}
						if err := rr.ReadRunInt64(gotRun[lo:lo+step], width, base); err != nil {
							t.Fatalf("width %d n %d vec %d lead %d: ReadRunInt64 at %d: %v",
								width, n, vi, lead, lo, err)
						}
						lo += step
					}
					rr.Detach()
					for i := range vals {
						if gotRun[i] != got64[i] {
							t.Fatalf("width %d n %d vec %d lead %d: run value %d: got %d want %d",
								width, n, vi, lead, i, gotRun[i], got64[i])
						}
					}
					if want := int(lead) + n*int(width); r.BitPos() != want {
						t.Fatalf("width %d n %d vec %d lead %d: run BitPos %d want %d",
							width, n, vi, lead, r.BitPos(), want)
					}
				}
			}
		}
	}
}

// writeBulkScalarForTest routes through the pre-kernel path while keeping
// the width>64 guard the public front door applies.
func (w *Writer) writeBulkScalarForTest(vals []uint64, width uint) {
	if width == 0 || len(vals) == 0 {
		return
	}
	w.writeBulkScalar(vals, width)
}

// TestWriteBulkInt64MatchesManual pins the fused encode loop against the
// open-coded offset computation it replaced in the block encoders.
func TestWriteBulkInt64MatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 200; iter++ {
		width := uint(rng.Intn(65))
		n := rng.Intn(200)
		base := rng.Int63() - rng.Int63()
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = base + int64(rng.Uint64()&(1<<uint(rng.Intn(32))-1))
		}
		lead := uint(rng.Intn(8))

		manual := NewWriter(64)
		manual.WriteBits(1, lead)
		offsets := make([]uint64, n)
		for i, v := range vals {
			offsets[i] = uint64(v) - uint64(base)
		}
		manual.WriteBulk(offsets, width)

		fused := NewWriter(64)
		fused.WriteBits(1, lead)
		fused.WriteBulkInt64(vals, uint64(base), width)

		if !bytes.Equal(manual.Bytes(), fused.Bytes()) {
			t.Fatalf("iter %d (width %d, lead %d): fused stream differs", iter, width, lead)
		}
	}
}

// FuzzBulkKernels cross-checks the kernel front doors against the scalar
// paths on arbitrary inputs: pack byte-identity, unpack value-identity, and
// the ReadBulk short-buffer count contract.
func FuzzBulkKernels(f *testing.F) {
	f.Add(uint(5), uint(0), int64(77), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint(13), uint(3), int64(-5), bytes.Repeat([]byte{0xff}, 200))
	f.Add(uint(64), uint(7), int64(0), bytes.Repeat([]byte{0xa5}, 64))
	f.Fuzz(func(t *testing.T, width, lead uint, base int64, raw []byte) {
		width %= 65
		lead %= 8
		// Derive values from the raw bytes, 8 per value.
		n := len(raw) / 8
		if n > 4096 {
			n = 4096
		}
		vals := make([]uint64, n)
		for i := range vals {
			for j := 0; j < 8; j++ {
				vals[i] = vals[i]<<8 | uint64(raw[i*8+j])
			}
		}

		// Pack differential.
		scalar := NewWriter(64)
		scalar.WriteBits(1, lead)
		if width > 0 && n > 0 {
			scalar.writeBulkScalar(vals, width)
		}
		kernel := NewWriter(64)
		kernel.WriteBits(1, lead)
		kernel.WriteBulk(vals, width)
		if !bytes.Equal(scalar.Bytes(), kernel.Bytes()) {
			t.Fatalf("pack streams differ (width %d lead %d n %d)", width, lead, n)
		}

		// Unpack differential over the raw bytes themselves (arbitrary
		// stream, not necessarily one we wrote).
		if width > 0 {
			r1 := NewReader(raw)
			r2 := NewReader(raw)
			if _, err := r1.ReadBits(lead); err == nil {
				if _, err := r2.ReadBits(lead); err != nil {
					t.Fatal(err)
				}
				out1 := make([]uint64, n+3)
				out2 := make([]uint64, n+3)
				m1, err1 := r1.ReadBulk(out1, width)
				// Scalar reference: values that fit, one by one.
				m2 := 0
				var err2 error
				for m2 < len(out2) {
					v, err := r2.ReadBits(width)
					if err != nil {
						err2 = ErrUnexpectedEOF
						break
					}
					out2[m2] = v
					m2++
				}
				if m1 != m2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("count contract: kernel (%d, %v) scalar (%d, %v)", m1, err1, m2, err2)
				}
				for i := 0; i < m1; i++ {
					if out1[i] != out2[i] {
						t.Fatalf("value %d: kernel %#x scalar %#x", i, out1[i], out2[i])
					}
				}
				if r1.BitPos() != r2.BitPos() {
					t.Fatalf("position: kernel %d scalar %d", r1.BitPos(), r2.BitPos())
				}
			}
		}

		// Fused int64 write differential.
		fused := NewWriter(64)
		fused.WriteBits(1, lead)
		ivals := make([]int64, n)
		for i, v := range vals {
			ivals[i] = int64(v)
		}
		fused.WriteBulkInt64(ivals, uint64(base), width)
		manual := NewWriter(64)
		manual.WriteBits(1, lead)
		offs := make([]uint64, n)
		for i, v := range ivals {
			offs[i] = uint64(v) - uint64(base)
		}
		manual.WriteBulk(offs, width)
		if !bytes.Equal(fused.Bytes(), manual.Bytes()) {
			t.Fatalf("fused int64 stream differs (width %d lead %d)", width, lead)
		}

		// RunReader leg: run-fused reads over the arbitrary raw stream in
		// short chunks must agree with ReadBulkInt64 on values, rejection
		// and final position.
		if width > 0 && n > 0 {
			r1 := NewReader(raw)
			r2 := NewReader(raw)
			if _, err := r1.ReadBits(lead); err == nil {
				if _, err := r2.ReadBits(lead); err != nil {
					t.Fatal(err)
				}
				want := make([]int64, n)
				wantErr := r1.ReadBulkInt64(want, width, uint64(base))
				got := make([]int64, n)
				rr := r2.Run()
				var gotErr error
				for lo := 0; lo < n && gotErr == nil; {
					step := 1 + lo%11
					if lo+step > n {
						step = n - lo
					}
					gotErr = rr.ReadRunInt64(got[lo:lo+step], width, uint64(base))
					lo += step
				}
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("run rejection: bulk %v run %v (width %d lead %d n %d)", wantErr, gotErr, width, lead, n)
				}
				if wantErr == nil {
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("run value %d: %d vs %d (width %d lead %d)", i, got[i], want[i], width, lead)
						}
					}
					rr.Detach()
					if r1.BitPos() != r2.BitPos() {
						t.Fatalf("run position: bulk %d run %d", r1.BitPos(), r2.BitPos())
					}
				}
			}
		}
	})
}

// TestReadBulkKernelSpeedup is the CI decode-bench smoke: the kernel path
// must beat the scalar loop by at least 1.5x on a byte-aligned mid-width
// stream (in practice it is 4-8x). Opt-in via BOS_BENCH_SMOKE=1 so noisy
// development machines do not see spurious failures.
func TestReadBulkKernelSpeedup(t *testing.T) {
	if os.Getenv("BOS_BENCH_SMOKE") == "" {
		t.Skip("set BOS_BENCH_SMOKE=1 to run the kernel speedup smoke")
	}
	const width, n = 12, 1024
	vals := benchVals(width, n)
	w := NewWriter(1 << 14)
	w.WriteBulk(vals, width)
	data := w.Bytes()
	out := make([]uint64, n)

	kernel := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := NewReader(data)
			if _, err := r.ReadBulk(out, width); err != nil {
				b.Fatal(err)
			}
		}
	})
	scalar := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := NewReader(data)
			if err := r.readBulkScalar(out, width); err != nil {
				b.Fatal(err)
			}
		}
	})
	sp := float64(scalar.NsPerOp()) / float64(kernel.NsPerOp())
	t.Logf("ReadBulk width %d: scalar %d ns/op, kernel %d ns/op, speedup %.2fx",
		width, scalar.NsPerOp(), kernel.NsPerOp(), sp)
	if sp < 1.5 {
		t.Fatalf("kernel speedup %.2fx < 1.5x (scalar %d ns/op, kernel %d ns/op)",
			sp, scalar.NsPerOp(), kernel.NsPerOp())
	}
}
