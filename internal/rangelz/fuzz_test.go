package rangelz

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRoundTrip: any input must compress and decompress to itself.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("entropy entropy entropy"))
	f.Add(bytes.Repeat([]byte{7}, 4000))
	f.Add([]byte(strings.Repeat("xyzzy", 50)))
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := Compress(nil, src)
		got, err := Decompress(enc)
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(src))
		}
	})
}

// FuzzDecompress: arbitrary bytes must never panic the decoder.
func FuzzDecompress(f *testing.F) {
	f.Add(Compress(nil, []byte("seed corpus for the range decoder")))
	f.Add([]byte{0x00})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		Decompress(data)
	})
}
