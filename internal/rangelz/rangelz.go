package rangelz

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch    = 3
	maxMatchLen = minMatch + 255 // length fits the 8-bit length tree
	windowSize  = 1 << 16
	hashBits    = 15
	chainDepth  = 32
)

var errCorrupt = errors.New("rangelz: corrupt stream")

// Compressor satisfies codec.ByteCompressor.
type Compressor struct{}

// Name implements codec.ByteCompressor.
func (Compressor) Name() string { return "7Z" }

// Compress implements codec.ByteCompressor.
func (Compressor) Compress(dst, src []byte) []byte { return Compress(dst, src) }

// Decompress implements codec.ByteCompressor.
func (Compressor) Decompress(src []byte) ([]byte, error) { return Decompress(src) }

// model bundles the adaptive probabilities shared by encoder and decoder.
type model struct {
	isMatch  prob
	literals *bitTree // 8-bit literal tree
	length   *bitTree // 8-bit match length tree (len-minMatch)
}

func newModel() *model {
	return &model{
		isMatch:  probInit,
		literals: newBitTree(8),
		length:   newBitTree(8),
	}
}

func hash3(a, b, c byte) uint32 {
	return (uint32(a)<<16 | uint32(b)<<8 | uint32(c)) * 2654435761 >> (32 - hashBits)
}

// Compress appends a varint raw length plus the range-coded LZSS stream.
func Compress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	e := newRCEncoder(dst)
	m := newModel()
	var head [1 << hashBits]int32 // position+1 of chain head
	chain := make([]int32, len(src))

	insert := func(i int) {
		if i+minMatch <= len(src) {
			h := hash3(src[i], src[i+1], src[i+2])
			chain[i] = head[h] - 1
			head[h] = int32(i + 1)
		}
	}
	i := 0
	for i < len(src) {
		bestLen, bestDist := 0, 0
		if i+minMatch <= len(src) {
			h := hash3(src[i], src[i+1], src[i+2])
			cand := int(head[h]) - 1
			for depth := 0; cand >= 0 && depth < chainDepth && i-cand < windowSize; depth++ {
				l := matchLen(src, cand, i)
				if l > bestLen {
					bestLen, bestDist = l, i-cand
					if l >= maxMatchLen {
						break
					}
				}
				cand = int(chain[cand]) - 1
			}
		}
		if bestLen >= minMatch {
			if bestLen > maxMatchLen {
				bestLen = maxMatchLen
			}
			e.encodeBit(&m.isMatch, 1)
			m.length.encode(e, uint32(bestLen-minMatch))
			e.encodeDirect(uint32(bestDist-1), 16)
			for k := 0; k < bestLen; k++ {
				insert(i + k)
			}
			i += bestLen
		} else {
			e.encodeBit(&m.isMatch, 0)
			m.literals.encode(e, uint32(src[i]))
			insert(i)
			i++
		}
	}
	return e.flush()
}

func matchLen(src []byte, cand, i int) int {
	l := 0
	max := len(src) - i
	if max > maxMatchLen {
		max = maxMatchLen
	}
	for l < max && src[cand+l] == src[i+l] {
		l++
	}
	return l
}

// Decompress inverts Compress.
func Decompress(src []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: header", errCorrupt)
	}
	src = src[n:]
	// The range coder achieves at most ~probBits compression per symbol;
	// a generous expansion bound still blocks absurd allocations.
	if rawLen > uint64(len(src))*4096+64 {
		return nil, fmt.Errorf("%w: implausible raw length %d", errCorrupt, rawLen)
	}
	d := newRCDecoder(src)
	m := newModel()
	out := make([]byte, 0, rawLen)
	for uint64(len(out)) < rawLen {
		if d.overrun() {
			return nil, fmt.Errorf("%w: truncated stream", errCorrupt)
		}
		if d.decodeBit(&m.isMatch) == 0 {
			out = append(out, byte(m.literals.decode(d)))
			continue
		}
		length := int(m.length.decode(d)) + minMatch
		dist := int(d.decodeDirect(16)) + 1
		if dist > len(out) {
			return nil, fmt.Errorf("%w: distance %d at %d", errCorrupt, dist, len(out))
		}
		if uint64(len(out)+length) > rawLen {
			return nil, fmt.Errorf("%w: match overruns output", errCorrupt)
		}
		start := len(out) - dist
		for k := 0; k < length; k++ {
			out = append(out, out[start+k])
		}
	}
	return out, nil
}
