// Package rangelz implements an LZMA-class byte compressor from scratch:
// an LZSS match finder (hash chains over a 64 KiB window) whose symbol stream
// is entropy-coded with an adaptive binary range coder, the same
// dictionary-plus-range-coding recipe as 7-Zip's LZMA. It stands in for 7-Zip
// in the Figure 13 complementarity study (see the substitution table in
// DESIGN.md).
package rangelz

// The range coder is the carry-aware binary coder used by LZMA: 11-bit
// adaptive probabilities, top-value renormalization at 2^24.

const (
	probBits = 11
	probInit = 1 << (probBits - 1) // 0.5
	moveBits = 5
	topValue = 1 << 24
)

type prob = uint16

// rcEncoder is the range encoder. Its first output byte is always the
// initial zero cache (which absorbs a possible carry), exactly as in LZMA;
// the decoder skips it.
type rcEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

func newRCEncoder(dst []byte) *rcEncoder {
	return &rcEncoder{rng: 0xffffffff, cacheSize: 1, out: dst}
}

func (e *rcEncoder) shiftLow() {
	if uint32(e.low) < 0xff000000 || e.low>>32 != 0 {
		temp := e.cache
		carry := byte(e.low >> 32)
		for {
			e.out = append(e.out, temp+carry)
			temp = 0xff
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xffffffff
}

// encodeBit codes one bit under the adaptive probability *p.
func (e *rcEncoder) encodeBit(p *prob, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (1<<probBits - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// encodeDirect codes width bits at fixed probability 1/2 (no adaptation).
func (e *rcEncoder) encodeDirect(v uint32, width uint) {
	for i := int(width) - 1; i >= 0; i-- {
		e.rng >>= 1
		bit := v >> uint(i) & 1
		if bit != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

func (e *rcEncoder) flush() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// rcDecoder is the matching range decoder.
type rcDecoder struct {
	rng  uint32
	code uint32
	in   []byte
	pos  int
}

func newRCDecoder(src []byte) *rcDecoder {
	d := &rcDecoder{rng: 0xffffffff}
	d.in = src
	// The first emitted byte is the initial cache (always 0); skip it and
	// load 4 code bytes.
	d.pos = 1
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *rcDecoder) next() byte {
	if d.pos < len(d.in) {
		b := d.in[d.pos]
		d.pos++
		return b
	}
	d.pos++
	return 0
}

// overrun reports whether the decoder has read past the input, which only
// happens on corrupt streams.
func (d *rcDecoder) overrun() bool { return d.pos > len(d.in)+5 }

func (d *rcDecoder) decodeBit(p *prob) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<probBits - *p) >> moveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> moveBits
		bit = 1
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.next())
	}
	return bit
}

func (d *rcDecoder) decodeDirect(width uint) uint32 {
	var v uint32
	for i := 0; i < int(width); i++ {
		d.rng >>= 1
		t := (d.code - d.rng) >> 31 // 1 when code < rng
		if t == 0 {
			d.code -= d.rng
		}
		v = v<<1 | (1 - t)
		for d.rng < topValue {
			d.rng <<= 8
			d.code = d.code<<8 | uint32(d.next())
		}
	}
	return v
}

// bitTree codes an n-bit symbol MSB-first through a tree of adaptive
// probabilities, exactly like LZMA's literal and length coders.
type bitTree struct {
	probs []prob
	bits  uint
}

func newBitTree(bits uint) *bitTree {
	t := &bitTree{probs: make([]prob, 1<<bits), bits: bits}
	for i := range t.probs {
		t.probs[i] = probInit
	}
	return t
}

func (t *bitTree) encode(e *rcEncoder, sym uint32) {
	node := uint32(1)
	for i := int(t.bits) - 1; i >= 0; i-- {
		bit := int(sym >> uint(i) & 1)
		e.encodeBit(&t.probs[node], bit)
		node = node<<1 | uint32(bit)
	}
}

func (t *bitTree) decode(d *rcDecoder) uint32 {
	node := uint32(1)
	for i := 0; i < int(t.bits); i++ {
		node = node<<1 | uint32(d.decodeBit(&t.probs[node]))
	}
	return node - 1<<t.bits
}
