package rangelz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bos/internal/lz"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := Compress(nil, src)
	got, err := Decompress(enc)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(src))
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{255},
		[]byte("a"),
		[]byte("hello, world"),
		[]byte(strings.Repeat("abcd", 1000)),
		[]byte(strings.Repeat("z", 50000)),
		bytes.Repeat([]byte{1, 2, 3, 250, 251}, 300),
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRangeCoderBits(t *testing.T) {
	// Exercise the coder directly with a biased bit stream.
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 5000)
	for i := range bits {
		if rng.Float64() < 0.9 {
			bits[i] = 0
		} else {
			bits[i] = 1
		}
	}
	e := newRCEncoder(nil)
	p := prob(probInit)
	for _, b := range bits {
		e.encodeBit(&p, b)
	}
	enc := e.flush()
	// ~0.47 bits of entropy per symbol: must land well below 1 bit.
	if len(enc) > 5000/8*8/10*9 {
		t.Errorf("biased stream coded to %d bytes", len(enc))
	}
	d := newRCDecoder(enc)
	p = probInit
	for i, want := range bits {
		if got := d.decodeBit(&p); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestRangeCoderDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]uint32, 1000)
	widths := make([]uint, 1000)
	e := newRCEncoder(nil)
	for i := range vals {
		widths[i] = uint(rng.Intn(17))
		vals[i] = rng.Uint32() & (1<<widths[i] - 1)
		e.encodeDirect(vals[i], widths[i])
	}
	enc := e.flush()
	d := newRCDecoder(enc)
	for i := range vals {
		if got := d.decodeDirect(widths[i]); got != vals[i] {
			t.Fatalf("value %d: got %d want %d (width %d)", i, got, vals[i], widths[i])
		}
	}
}

func TestBitTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := make([]uint32, 2000)
	for i := range syms {
		syms[i] = uint32(rng.Intn(256))
	}
	e := newRCEncoder(nil)
	te := newBitTree(8)
	for _, s := range syms {
		te.encode(e, s)
	}
	enc := e.flush()
	d := newRCDecoder(enc)
	td := newBitTree(8)
	for i, want := range syms {
		if got := td.decode(d); got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
}

func TestBeatsLZ4OnBiasedAlphabet(t *testing.T) {
	// On low-repetition data from a skewed alphabet LZ77 finds few
	// matches, so LZ4 stores bytes raw while the range coder still
	// squeezes them to their entropy. This is where the LZMA-class stage
	// must win.
	rng := rand.New(rand.NewSource(99))
	src := make([]byte, 32768)
	for i := range src {
		// Geometric-ish distribution over a 16-symbol alphabet.
		v := 0
		for v < 15 && rng.Float64() < 0.55 {
			v++
		}
		src[i] = byte(v)
	}
	rl := len(Compress(nil, src))
	l4 := len(lz.Compress(nil, src))
	if rl >= l4 {
		t.Errorf("rangelz %d bytes >= lz4 %d — entropy stage buys nothing", rl, l4)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		enc := Compress(nil, src)
		got, err := Decompress(enc)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 100, 10000, 70000} {
		src := make([]byte, n)
		rng.Read(src)
		roundTrip(t, src)
	}
}

func TestDecompressCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := Compress(nil, []byte(strings.Repeat("hello world ", 100)))
	for i := 0; i < 2000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		Decompress(cor)
	}
}

func BenchmarkCompress(b *testing.B) {
	src := []byte(strings.Repeat("sensor=42 temp=17.5 state=OK\n", 2000))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = Compress(buf[:0], src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := []byte(strings.Repeat("sensor=42 temp=17.5 state=OK\n", 2000))
	enc := Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(enc); err != nil {
			b.Fatal(err)
		}
	}
}
