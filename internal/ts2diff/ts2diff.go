// Package ts2diff implements the TS2DIFF delta encoding used by Apache IoTDB
// (Xiao et al., VLDB 2022), parameterized by a bit-packing operator: each
// block stores its first value and the consecutive differences, which the
// configured codec.Packer then packs (the packer's frame-of-reference
// subtraction plays the role of TS2DIFF's min-delta subtraction). This is the
// TS2DIFF+BP / TS2DIFF+PFOR / TS2DIFF+BOS family of the evaluation.
package ts2diff

import (
	"fmt"

	"bos/internal/codec"
)

// Codec is delta encoding over a pluggable packer.
type Codec struct {
	Packer    codec.Packer
	BlockSize int
}

// New returns a TS2DIFF codec over p (block size defaults to
// codec.DefaultBlockSize).
func New(p codec.Packer, blockSize int) *Codec {
	if blockSize <= 0 {
		blockSize = codec.DefaultBlockSize
	}
	return &Codec{Packer: p, BlockSize: blockSize}
}

// Name implements codec.IntCodec.
func (c *Codec) Name() string { return "TS2DIFF+" + c.Packer.Name() }

// Deltas rewrites vals as first-order differences (wrapping int64
// arithmetic, so the full value range round-trips). The first element is the
// difference from zero, i.e. the first value itself.
func Deltas(vals []int64) []int64 {
	out := make([]int64, len(vals))
	prev := int64(0)
	for i, v := range vals {
		out[i] = int64(uint64(v) - uint64(prev))
		prev = v
	}
	return out
}

// Undeltas inverts Deltas in place and returns its argument.
func Undeltas(deltas []int64) []int64 {
	prev := int64(0)
	for i, d := range deltas {
		prev = int64(uint64(prev) + uint64(d))
		deltas[i] = prev
	}
	return deltas
}

// Encode implements codec.IntCodec.
func (c *Codec) Encode(dst []byte, vals []int64) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(vals)))
	deltas := Deltas(vals)
	for off := 0; off < len(deltas); off += c.BlockSize {
		end := off + c.BlockSize
		if end > len(deltas) {
			end = len(deltas)
		}
		dst = c.Packer.Pack(dst, deltas[off:end])
	}
	return dst
}

// Decode implements codec.IntCodec.
func (c *Codec) Decode(src []byte) ([]int64, error) {
	n64, src, err := codec.ReadUvarint(src)
	if err != nil {
		return nil, fmt.Errorf("ts2diff: count: %w", err)
	}
	if n64 > uint64(codec.MaxBlockLen)*64 {
		return nil, fmt.Errorf("ts2diff: implausible count %d", n64)
	}
	n := int(n64)
	out := make([]int64, 0, n)
	for len(out) < n {
		before := len(out)
		out, src, err = c.Packer.Unpack(src, out)
		if err != nil {
			return nil, fmt.Errorf("ts2diff: %w", err)
		}
		if len(out) == before {
			return nil, fmt.Errorf("ts2diff: empty block before %d/%d values", len(out), n)
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("ts2diff: decoded %d values, want %d", len(out), n)
	}
	return Undeltas(out), nil
}
