package ts2diff

import (
	"math"
	"math/rand"
	"testing"

	"bos/internal/bitpack"
	"bos/internal/codec"
	"bos/internal/core"
	"bos/internal/pfor"
)

func testPackers() []codec.Packer {
	return []codec.Packer{
		bitpack.Packer{},
		pfor.NewPFOR{},
		pfor.FastPFOR{},
		core.NewPacker(core.SeparationBitWidth),
		core.NewPacker(core.SeparationMedian),
	}
}

func roundTrip(t *testing.T, c codec.IntCodec, vals []int64) []byte {
	t.Helper()
	enc := c.Encode(nil, vals)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", c.Name(), err)
	}
	if len(got) != len(vals) {
		t.Fatalf("%s: decoded %d values want %d", c.Name(), len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%s: value %d: got %d want %d", c.Name(), i, got[i], vals[i])
		}
	}
	return enc
}

func TestDeltasInverse(t *testing.T) {
	cases := [][]int64{
		{},
		{5},
		{1, 2, 3, 4},
		{math.MinInt64, math.MaxInt64, 0, -1},
		{100, 90, 95, 105},
	}
	for _, vals := range cases {
		d := Deltas(vals)
		back := Undeltas(append([]int64(nil), d...))
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("%v: got %v", vals, back)
			}
		}
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{42},
		{1, 2, 3, 4, 5},
		{math.MinInt64, math.MaxInt64},
		{-5, -4, 10000, -3},
	}
	for _, p := range testPackers() {
		c := New(p, 0)
		for _, vals := range cases {
			roundTrip(t, c, vals)
		}
	}
}

func TestTrendRemoval(t *testing.T) {
	// A strong linear trend with small noise: deltas are tiny, so
	// TS2DIFF+BP should compress far below raw width.
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 8192)
	v := int64(1 << 40)
	for i := range vals {
		v += 1000 + int64(rng.Intn(8))
		vals[i] = v
	}
	c := New(bitpack.Packer{}, 0)
	enc := roundTrip(t, c, vals)
	if len(enc) > 8192*4 {
		t.Errorf("trended series: %d bytes — deltas not helping", len(enc))
	}
}

func TestBOSBeatsBPOnOutlierDeltas(t *testing.T) {
	// Sensor resets produce giant deltas: exactly the regime where
	// TS2DIFF+BOS should beat TS2DIFF+BP (Figure 10a).
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, 8192)
	v := int64(0)
	for i := range vals {
		if rng.Float64() < 0.01 {
			v = rng.Int63n(1 << 30) // reset jump
		} else {
			v += int64(rng.Intn(16)) - 8
		}
		vals[i] = v
	}
	bp := len(New(bitpack.Packer{}, 0).Encode(nil, vals))
	bos := len(New(core.NewPacker(core.SeparationBitWidth), 0).Encode(nil, vals))
	if bos >= bp {
		t.Errorf("TS2DIFF+BOS-B %d bytes, TS2DIFF+BP %d — BOS should win", bos, bp)
	}
}

func TestRandomWalksAllPackers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range testPackers() {
		c := New(p, 256)
		for iter := 0; iter < 30; iter++ {
			n := rng.Intn(3000)
			vals := make([]int64, n)
			v := int64(0)
			for i := range vals {
				v += int64(rng.NormFloat64() * 50)
				vals[i] = v
			}
			roundTrip(t, c, vals)
		}
	}
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := New(core.NewPacker(core.SeparationBitWidth), 0)
	base := c.Encode(nil, []int64{5, 6, 7, 1000, 8, 9})
	for i := 0; i < 2000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		c.Decode(cor)
	}
}
