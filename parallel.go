package bos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
)

// CompressParallel compresses vals with the given options using up to
// `workers` goroutines (NumCPU when workers <= 0). The output is the same
// segment stream Writer produces — byte-for-byte identical to the sequential
// path — so it can be decoded with ReadAll, DecompressParallel, or a Reader.
//
// Block planning dominates BOS compression cost (especially PlannerValue),
// and blocks are independent, so throughput scales near-linearly with cores.
func CompressParallel(vals []int64, opt Options, workers int) []byte {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	bs := blockSizeOf(opt)
	nSegs := (len(vals) + bs - 1) / bs
	if nSegs <= 1 || workers == 1 {
		var buf bytes.Buffer
		w := NewWriter(&buf, opt)
		w.WriteValues(vals...)
		w.Close()
		return buf.Bytes()
	}
	segs := make([][]byte, nSegs)
	var wg sync.WaitGroup
	next := make(chan int, nSegs)
	for s := 0; s < nSegs; s++ {
		next <- s
	}
	close(next)
	if workers > nSegs {
		workers = nSegs
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				lo := s * bs
				hi := lo + bs
				if hi > len(vals) {
					hi = len(vals)
				}
				body := Compress(nil, vals[lo:hi], opt)
				var hdr [binary.MaxVarintLen64]byte
				n := binary.PutUvarint(hdr[:], uint64(len(body)))
				segs[s] = append(hdr[:n:n], body...)
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	out := make([]byte, 0, total)
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

// DecompressParallel decodes a segment stream (from Writer or
// CompressParallel) using up to `workers` goroutines.
func DecompressParallel(data []byte, workers int) ([]int64, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Frame splitting runs twice over the varint headers — once to count,
	// once to record the body slices — so every bookkeeping slice below is
	// allocated exactly once instead of growing through append. The headers
	// are a tiny fraction of the stream; the bodies are not touched until
	// the parallel decode.
	nFrames := 0
	for rest := data; len(rest) > 0; {
		segLen, used := binary.Uvarint(rest)
		if used <= 0 || segLen > uint64(len(rest)-used) {
			return nil, fmt.Errorf("%w: segment frame", ErrCorrupt)
		}
		rest = rest[used+int(segLen):]
		nFrames++
	}
	if nFrames == 0 {
		return []int64{}, nil
	}
	frames := make([][]byte, 0, nFrames)
	for rest := data; len(rest) > 0; {
		segLen, used := binary.Uvarint(rest)
		frames = append(frames, rest[used:used+int(segLen)])
		rest = rest[used+int(segLen):]
	}
	if nFrames == 1 {
		return Decompress(frames[0])
	}
	results := make([][]int64, len(frames))
	errs := make([]error, len(frames))
	var wg sync.WaitGroup
	next := make(chan int, len(frames))
	for i := range frames {
		next <- i
	}
	close(next)
	if workers > len(frames) {
		workers = len(frames)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = Decompress(frames[i])
			}
		}()
	}
	wg.Wait()
	total := 0
	for i := range frames {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += len(results[i])
	}
	out := make([]int64, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}
