package bos

import (
	"testing"

	"bos/internal/dataset"
)

// TestIntegrationAllDatasetsAllOptions pushes every evaluation dataset
// through the public API under every planner/pipeline combination (and the
// post stages on one pipeline), verifying lossless round trips and that the
// BOS planners never lose to plain packing by more than stream overhead.
func TestIntegrationAllDatasetsAllOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is slow")
	}
	for _, d := range dataset.All() {
		ints := d.Ints(6000)
		floats := d.Floats(6000)
		var plainSize int
		for _, opt := range []Options{
			{Planner: PlannerNone},
			{Planner: PlannerBitWidth},
			{Planner: PlannerMedian},
			{Planner: PlannerBitWidth, Pipeline: PipelineRaw},
			{Planner: PlannerBitWidth, Pipeline: PipelineRLE},
			{Planner: PlannerBitWidth, Post: PostLZ},
			{Planner: PlannerBitWidth, Post: PostRange},
		} {
			enc := Compress(nil, ints, opt)
			got, err := Decompress(enc)
			if err != nil {
				t.Fatalf("%s %+v: %v", d.Abbr, opt, err)
			}
			for i := range ints {
				if got[i] != ints[i] {
					t.Fatalf("%s %+v: value %d mismatch", d.Abbr, opt, i)
				}
			}
			if opt.Planner == PlannerNone {
				plainSize = len(enc)
			}
			if opt.Planner == PlannerBitWidth && opt.Pipeline == PipelineDelta && opt.Post == PostNone {
				if len(enc) > plainSize+64 {
					t.Errorf("%s: BOS-B stream %d bytes exceeds plain %d", d.Abbr, len(enc), plainSize)
				}
			}

			fenc := CompressFloats(nil, floats, opt)
			fgot, err := DecompressFloats(fenc)
			if err != nil {
				t.Fatalf("%s floats %+v: %v", d.Abbr, opt, err)
			}
			for i := range floats {
				if fgot[i] != floats[i] {
					t.Fatalf("%s floats %+v: value %d mismatch", d.Abbr, opt, i)
				}
			}
		}
		// The stream must describe itself accurately.
		st, err := Stats(Compress(nil, ints, Options{}))
		if err != nil {
			t.Fatalf("%s: stats: %v", d.Abbr, err)
		}
		if st.Values != len(ints) {
			t.Errorf("%s: stats counted %d values", d.Abbr, st.Values)
		}
	}
}
