package bos

import (
	"encoding/binary"
	"fmt"
	"io"
)

// FloatWriter streams float64 values as length-prefixed compressed segments,
// the float twin of Writer. Each segment independently detects its decimal
// precision, so a stream may mix scaled and raw segments and stay lossless
// throughout.
type FloatWriter struct {
	w   io.Writer
	opt Options
	buf []float64
	scr []byte
	err error
}

// NewFloatWriter returns a FloatWriter with the given options.
func NewFloatWriter(w io.Writer, opt Options) *FloatWriter {
	return &FloatWriter{w: w, opt: opt, buf: make([]float64, 0, blockSizeOf(opt))}
}

// WriteValues appends values, emitting full segments as blocks fill up.
func (w *FloatWriter) WriteValues(vals ...float64) error {
	if w.err != nil {
		return w.err
	}
	bs := blockSizeOf(w.opt)
	for len(vals) > 0 {
		take := bs - len(w.buf)
		if take > len(vals) {
			take = len(vals)
		}
		w.buf = append(w.buf, vals[:take]...)
		vals = vals[take:]
		if len(w.buf) == bs {
			w.err = w.emit()
			if w.err != nil {
				return w.err
			}
		}
	}
	return nil
}

func (w *FloatWriter) emit() error {
	seg := CompressFloats(w.scr[:0], w.buf, w.opt)
	w.scr = seg
	w.buf = w.buf[:0]
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(seg)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.w.Write(seg)
	return err
}

// Flush writes any buffered values as a final (possibly short) segment.
func (w *FloatWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		w.err = w.emit()
	}
	return w.err
}

// Close flushes the writer. It does not close the underlying io.Writer.
func (w *FloatWriter) Close() error { return w.Flush() }

// FloatReader decodes a stream produced by FloatWriter, one segment at a
// time.
type FloatReader struct {
	r *bufioReader
}

// NewFloatReader returns a FloatReader over r.
func NewFloatReader(r io.Reader) *FloatReader {
	return &FloatReader{r: newBufioReader(r)}
}

// Next returns the values of the next segment, or io.EOF at end of stream.
func (r *FloatReader) Next() ([]float64, error) {
	seg, err := r.r.nextSegment()
	if err != nil {
		return nil, err
	}
	return DecompressFloats(seg)
}

// ReadAllFloats drains a FloatWriter stream into one slice.
func ReadAllFloats(r io.Reader) ([]float64, error) {
	fr := NewFloatReader(r)
	var out []float64
	for {
		vals, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
}

// bufioReader frames length-prefixed segments for both Reader and
// FloatReader.
type bufioReader struct {
	br byteReader
}

type byteReader interface {
	io.Reader
	io.ByteReader
}

func newBufioReader(r io.Reader) *bufioReader {
	if br, ok := r.(byteReader); ok {
		return &bufioReader{br: br}
	}
	return &bufioReader{br: newFallbackReader(r)}
}

func (b *bufioReader) nextSegment() ([]byte, error) {
	segLen, err := binary.ReadUvarint(b.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: segment length: %v", ErrCorrupt, err)
	}
	if segLen > 1<<31 {
		return nil, fmt.Errorf("%w: segment of %d bytes", ErrCorrupt, segLen)
	}
	seg := make([]byte, segLen)
	if _, err := io.ReadFull(b.br, seg); err != nil {
		return nil, fmt.Errorf("%w: segment body: %v", ErrCorrupt, err)
	}
	return seg, nil
}

// fallbackReader adds ReadByte to a plain io.Reader.
type fallbackReader struct {
	r   io.Reader
	one [1]byte
}

func newFallbackReader(r io.Reader) *fallbackReader { return &fallbackReader{r: r} }

func (f *fallbackReader) Read(p []byte) (int, error) { return f.r.Read(p) }

func (f *fallbackReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(f.r, f.one[:]); err != nil {
		return 0, err
	}
	return f.one[0], nil
}
