package bos

import (
	"encoding/hex"
	"testing"
)

// Golden format tests: the encoded bytes of fixed inputs are part of the
// library's compatibility contract. If one of these fails, the on-disk
// format changed — either revert the change or bump the stream magic and
// update the goldens deliberately.
func TestGoldenStreamFormat(t *testing.T) {
	cases := []struct {
		name string
		enc  []byte
		want string
	}{
		{
			"delta+bosb over the intro series",
			Compress(nil, []int64{3, 2, 4, 5, 3, 2, 0, 8}, Options{}),
			"b0510000008008080801030401030a010201455d44",
		},
		{
			"rle+bosb over runs",
			Compress(nil, []int64{5, 5, 5, 9, 9, 1}, Options{Pipeline: PipelineRLE}),
			"b051000200800806030301020101040801010170020100",
		},
		{
			"scaled floats, raw pipeline",
			CompressFloats(nil, []float64{1.5, 2.5, 0.25}, Options{Pipeline: PipelineRaw}),
			"b0510101008008020303013201017de10101010170",
		},
	}
	for _, c := range cases {
		if got := hex.EncodeToString(c.enc); got != c.want {
			t.Errorf("%s:\n  got  %s\n  want %s", c.name, got, c.want)
		}
	}
}

// The goldens above must of course still decode.
func TestGoldenStreamsDecode(t *testing.T) {
	intEnc, _ := hex.DecodeString("b0510000008008080801030401030a010201455d44")
	vals, err := Decompress(intEnc)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 2, 4, 5, 3, 2, 0, 8}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("value %d: got %d want %d", i, vals[i], want[i])
		}
	}
	fEnc, _ := hex.DecodeString("b0510101008008020303013201017de10101010170")
	fvals, err := DecompressFloats(fEnc)
	if err != nil {
		t.Fatal(err)
	}
	fwant := []float64{1.5, 2.5, 0.25}
	for i := range fwant {
		if fvals[i] != fwant[i] {
			t.Fatalf("float %d: got %v want %v", i, fvals[i], fwant[i])
		}
	}
}
