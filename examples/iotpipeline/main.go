// IoT ingestion pipeline: stream sensor readings into a block file with
// bos.Writer, then scan it back block by block with bos.Reader — the layout
// BOS uses inside Apache IoTDB/TsFile.
//
// The simulated fleet produces the shapes the paper's motivation describes:
// tight operating bands punctuated by dropouts (lower outliers) and
// saturation spikes (upper outliers).
//
//	go run ./examples/iotpipeline
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"math/rand"

	"bos"
)

func main() {
	const (
		devices        = 4
		readingsPerDev = 50_000
	)
	rng := rand.New(rand.NewSource(7))

	var totalRaw, totalCompressed int
	for dev := 0; dev < devices; dev++ {
		// Each device gets its own block file.
		var file bytes.Buffer
		w := bos.NewWriter(&file, bos.Options{
			Planner:  bos.PlannerBitWidth,
			Pipeline: bos.PipelineDelta,
		})

		// Ingest readings in arrival-sized chunks, as a collector would.
		written := 0
		baseline := 20_000 + rng.Int63n(10_000)
		for written < readingsPerDev {
			chunk := nextReadings(rng, baseline, 64+rng.Intn(512))
			if err := w.WriteValues(chunk...); err != nil {
				log.Fatal(err)
			}
			written += len(chunk)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}

		// Scan the file back block by block and compute a windowed
		// aggregate without materializing the whole series.
		r := bos.NewReader(bytes.NewReader(file.Bytes()))
		var count int
		var min, max int64 = math.MaxInt64, math.MinInt64
		for {
			blockVals, err := r.Next()
			if err != nil {
				break // io.EOF ends the scan
			}
			for _, v := range blockVals {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			count += len(blockVals)
		}
		raw := 8 * count
		fmt.Printf("device %d: %6d readings, %7d bytes on disk (ratio %.2f), range [%d, %d]\n",
			dev, count, file.Len(), float64(raw)/float64(file.Len()), min, max)
		totalRaw += raw
		totalCompressed += file.Len()
	}
	fmt.Printf("\nfleet total: %.1f KiB raw -> %.1f KiB stored (ratio %.2f)\n",
		float64(totalRaw)/1024, float64(totalCompressed)/1024,
		float64(totalRaw)/float64(totalCompressed))
}

// nextReadings simulates one arrival batch from a device: a drifting band
// with occasional dropouts and saturation spikes.
func nextReadings(rng *rand.Rand, baseline int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		v := baseline + int64(rng.NormFloat64()*40)
		switch r := rng.Float64(); {
		case r < 0.005:
			v = rng.Int63n(100) // dropout: lower outlier
		case r < 0.01:
			v = 1 << 20 // saturation: upper outlier
		}
		out[i] = v
	}
	return out
}
