// Float storage: compress decimal sensor floats losslessly through the
// scaled-integer path (the paper's 10^p conversion), compare planner and
// pipeline choices, and show the raw fallback for non-decimal data.
//
//	go run ./examples/floatstore
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"bos"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A fuel-gauge style series at one decimal place: slow drain with
	// refuel jumps and occasional sensor dropouts to ~0.
	fuel := make([]float64, 100_000)
	level := 92.0
	for i := range fuel {
		level -= math.Abs(rng.NormFloat64()) * 0.02
		level += rng.NormFloat64() * 0.3
		if level < 20 {
			level = 130 + rng.Float64()*15
		}
		v := level
		if rng.Float64() < 0.004 {
			v = rng.Float64() * 2 // dropout
		}
		fuel[i] = math.Round(v*10) / 10
	}

	fmt.Println("fuel gauge (decimal, precision 1):")
	for _, c := range []struct {
		name string
		opt  bos.Options
	}{
		{"delta + BP", bos.Options{Planner: bos.PlannerNone}},
		{"delta + BOS-B", bos.Options{Planner: bos.PlannerBitWidth}},
		{"delta + BOS-M", bos.Options{Planner: bos.PlannerMedian}},
		{"RLE   + BOS-B", bos.Options{Pipeline: bos.PipelineRLE}},
	} {
		enc := bos.CompressFloats(nil, fuel, c.opt)
		dec, err := bos.DecompressFloats(enc)
		if err != nil {
			log.Fatal(err)
		}
		for i := range fuel {
			if dec[i] != fuel[i] {
				log.Fatalf("%s: lossy at %d", c.name, i)
			}
		}
		fmt.Printf("  %-14s %8d bytes  ratio %.2f\n",
			c.name, len(enc), float64(8*len(fuel))/float64(len(enc)))
	}

	// Non-decimal floats (simulation output): the library detects that no
	// finite decimal precision represents them and stores raw bits rather
	// than lose information.
	sim := make([]float64, 10_000)
	for i := range sim {
		sim[i] = math.Sin(float64(i) / 17.3)
	}
	enc := bos.CompressFloats(nil, sim, bos.Options{})
	dec, err := bos.DecompressFloats(enc)
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for i := range sim {
		if math.Float64bits(dec[i]) != math.Float64bits(sim[i]) {
			exact = false
			break
		}
	}
	fmt.Printf("\nsimulation floats (non-decimal): %d bytes for %d values, bit-exact: %v\n",
		len(enc), len(sim), exact)
}
