// Quickstart: compress a small series with BOS, inspect the separation the
// planner chose, and verify the round trip.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bos"
)

func main() {
	// The motivating series from the paper's introduction: 8 small values
	// with a lower outlier (0) and an upper outlier (8).
	series := []int64{3, 2, 4, 5, 3, 2, 0, 8}

	// Ask the optimal O(n log n) planner what it would do with one block.
	plan := bos.AnalyzeBlock(series, bos.PlannerBitWidth)
	fmt.Printf("separated:    %v\n", plan.Separated)
	fmt.Printf("lower class:  %d value(s) <= %d at %d bits\n", plan.LowerCount, plan.MaxLower, plan.LowerBits)
	fmt.Printf("upper class:  %d value(s) >= %d at %d bits\n", plan.UpperCount, plan.MinUpper, plan.UpperBits)
	fmt.Printf("center width: %d bits (vs 4 bits under plain bit-packing)\n", plan.CenterBits)
	fmt.Printf("body cost:    %d bits (plain bit-packing needs %d)\n\n", plan.CostBits, 8*4)

	// Compress and decompress through the public API. The zero Options
	// value means: BOS-B planner, delta pipeline, 1024-value blocks.
	enc := bos.Compress(nil, series, bos.Options{Pipeline: bos.PipelineRaw})
	dec, err := bos.Decompress(enc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d values to %d bytes\n", len(series), len(enc))
	fmt.Printf("round trip ok: %v\n", equal(dec, series))

	// A larger, realistic series: a random-walk sensor with rare spikes.
	// Delta + BOS is the intended pipeline for this shape.
	sensor := makeSensor(100_000)
	for _, opt := range []struct {
		name string
		o    bos.Options
	}{
		{"BP   (no separation)", bos.Options{Planner: bos.PlannerNone}},
		{"BOS-B (optimal)", bos.Options{Planner: bos.PlannerBitWidth}},
		{"BOS-M (fast approx)", bos.Options{Planner: bos.PlannerMedian}},
	} {
		enc := bos.Compress(nil, sensor, opt.o)
		fmt.Printf("%-22s %8d bytes  ratio %.2f\n",
			opt.name, len(enc), float64(8*len(sensor))/float64(len(enc)))
	}
}

func makeSensor(n int) []int64 {
	vals := make([]int64, n)
	v := int64(500_000)
	state := uint64(42)
	for i := range vals {
		state = state*6364136223846793005 + 1442695040888963407
		r := state >> 33
		switch {
		case r%997 == 0:
			v += int64(r%200_000) - 100_000 // rare spike
		default:
			v += int64(r%17) - 8 // small jitter
		}
		vals[i] = v
	}
	return vals
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
