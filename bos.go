// Package bos is a Go implementation of Bit-packing with Outlier Separation
// (BOS, ICDE 2025): a drop-in replacement for the bit-packing operator that
// stores both the extremely large values (upper outliers) and the extremely
// small ones (lower outliers) of each block separately, so the remaining
// center values pack at a condensed bit-width.
//
// The package offers three planners that trade planning time for optimality:
//
//   - PlannerValue (BOS-V): exact, O(n^2) — enumerates value thresholds.
//   - PlannerBitWidth (BOS-B): exact, O(n log n) — enumerates bit-width
//     shaped thresholds; provably returns the same cost as BOS-V.
//   - PlannerMedian (BOS-M): approximate, O(n) — symmetric thresholds around
//     the median.
//
// and three pipelines that mirror the compression methods the paper plugs
// BOS into: raw block packing, delta packing (TS2DIFF) and run-length
// packing (RLE). Compressed streams are self-describing: Decompress needs no
// options.
//
//	enc := bos.Compress(nil, values, bos.Options{})           // BOS-B, delta
//	dec, err := bos.Decompress(enc)
//
// Float series with finite decimal precision compress through the same
// integer machinery via CompressFloats/DecompressFloats, falling back to a
// lossless raw representation when the data is not decimal.
package bos

import (
	"errors"
	"fmt"
	"math"

	"bos/internal/codec"
	"bos/internal/core"
	"bos/internal/floatconv"
	"bos/internal/lz"
	"bos/internal/rangelz"
	"bos/internal/rle"
	"bos/internal/ts2diff"
)

// Planner selects how outlier thresholds are chosen per block.
type Planner int

const (
	// PlannerBitWidth is BOS-B: optimal cost in O(n log n). The default.
	PlannerBitWidth Planner = iota
	// PlannerValue is BOS-V: optimal cost in O(n^2). Useful as a
	// reference; prefer PlannerBitWidth, which produces the same size.
	PlannerValue
	// PlannerMedian is BOS-M: near-optimal in O(n); the fastest encoder.
	PlannerMedian
	// PlannerNone disables outlier separation (plain bit-packing).
	PlannerNone
)

// String returns the paper's name for the planner.
func (p Planner) String() string { return p.separation().String() }

func (p Planner) separation() core.Separation {
	switch p {
	case PlannerValue:
		return core.SeparationValue
	case PlannerMedian:
		return core.SeparationMedian
	case PlannerNone:
		return core.SeparationNone
	default:
		return core.SeparationBitWidth
	}
}

// Pipeline selects the series transform applied before block packing.
type Pipeline int

const (
	// PipelineDelta packs consecutive differences (TS2DIFF). The default:
	// time series usually have far smaller deltas than values.
	PipelineDelta Pipeline = iota
	// PipelineRaw packs the values themselves.
	PipelineRaw
	// PipelineRLE packs (value, run length) pairs; best for series with
	// long constant runs.
	PipelineRLE
)

// Post selects an optional byte-level entropy stage applied over the packed
// stream — the paper's "BOS+LZ4" / "BOS+7-Zip" combinations (Figure 13).
type Post int

const (
	// PostNone stores the packed stream as-is. The default.
	PostNone Post = iota
	// PostLZ runs the packed stream through the LZ4-class compressor:
	// cheap, catches structural redundancy across blocks.
	PostLZ
	// PostRange runs the packed stream through the LZMA-class
	// range-coded compressor: slower, strongest ratios.
	PostRange
)

// Options configures Compress. The zero value (BOS-B planner, delta
// pipeline, no post stage, 1024-value blocks) is a good general-purpose
// choice.
type Options struct {
	Planner   Planner
	Pipeline  Pipeline
	Post      Post
	BlockSize int // values per block; 0 means 1024
}

// Stream layout constants.
const (
	magic0, magic1 = 0xB0, 0x51 // "BOS1"
	kindInt        = 0x00
	kindFloat      = 0x01
	kindFloatRaw   = 0x02
)

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("bos: corrupt stream")

func (o Options) intCodec() codec.IntCodec {
	p := core.NewPacker(o.Planner.separation())
	switch o.Pipeline {
	case PipelineRaw:
		return codec.NewBlockwise(p, o.BlockSize)
	case PipelineRLE:
		return rle.New(p, o.BlockSize)
	default:
		return ts2diff.New(p, o.BlockSize)
	}
}

func pipelineCodec(pl Pipeline, blockSize int) codec.IntCodec {
	return Options{Pipeline: pl, BlockSize: blockSize}.intCodec()
}

// Compress appends the compressed form of vals to dst and returns the
// extended slice. The output records the pipeline and post stage, so
// Decompress needs no options.
func Compress(dst []byte, vals []int64, opt Options) []byte {
	dst = append(dst, magic0, magic1, kindInt, byte(opt.Pipeline), byte(opt.Post))
	dst = codec.AppendUvarint(dst, uint64(blockSizeOf(opt)))
	packed := opt.intCodec().Encode(nil, vals)
	return appendPost(dst, packed, opt.Post)
}

// appendPost applies the entropy stage to the packed payload.
func appendPost(dst, packed []byte, post Post) []byte {
	switch post {
	case PostLZ:
		return lz.Compress(dst, packed)
	case PostRange:
		return rangelz.Compress(dst, packed)
	default:
		return append(dst, packed...)
	}
}

// undoPost inverts appendPost.
func undoPost(payload []byte, post Post) ([]byte, error) {
	switch post {
	case PostLZ:
		return lz.Decompress(payload)
	case PostRange:
		return rangelz.Decompress(payload)
	case PostNone:
		return payload, nil
	default:
		return nil, fmt.Errorf("%w: unknown post stage %d", ErrCorrupt, post)
	}
}

func blockSizeOf(opt Options) int {
	if opt.BlockSize <= 0 {
		return codec.DefaultBlockSize
	}
	return opt.BlockSize
}

// Decompress decodes a stream produced by Compress.
func Decompress(src []byte) ([]int64, error) {
	kind, pl, post, bs, rest, err := readHeader(src)
	if err != nil {
		return nil, err
	}
	if kind != kindInt {
		return nil, fmt.Errorf("%w: stream holds floats; use DecompressFloats", ErrCorrupt)
	}
	rest, err = undoPost(rest, post)
	if err != nil {
		return nil, fmt.Errorf("%w: post stage: %v", ErrCorrupt, err)
	}
	out, err := pipelineCodec(pl, bs).Decode(rest)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// CompressFloats appends the compressed form of a float64 series to dst.
// Series that are exact decimals (the common case for sensor data) are
// scaled to integers by 10^p as in the paper; anything else is stored
// losslessly in raw form.
func CompressFloats(dst []byte, vals []float64, opt Options) []byte {
	if p, ok := floatconv.DetectPrecision(vals); ok {
		scaled, err := floatconv.ToScaled(vals, p)
		if err == nil {
			dst = append(dst, magic0, magic1, kindFloat, byte(opt.Pipeline), byte(opt.Post))
			dst = codec.AppendUvarint(dst, uint64(blockSizeOf(opt)))
			dst = codec.AppendUvarint(dst, uint64(p))
			packed := opt.intCodec().Encode(nil, scaled)
			return appendPost(dst, packed, opt.Post)
		}
	}
	dst = append(dst, magic0, magic1, kindFloatRaw, 0, byte(PostNone))
	dst = codec.AppendUvarint(dst, uint64(blockSizeOf(opt)))
	dst = codec.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		b := math.Float64bits(v)
		dst = append(dst,
			byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
			byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
	}
	return dst
}

// DecompressFloats decodes a stream produced by CompressFloats.
func DecompressFloats(src []byte) ([]float64, error) {
	kind, pl, post, bs, rest, err := readHeader(src)
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindFloat:
		p64, rest, err := codec.ReadUvarint(rest)
		if err != nil || p64 > floatconv.MaxPrecision {
			return nil, fmt.Errorf("%w: precision", ErrCorrupt)
		}
		rest, err = undoPost(rest, post)
		if err != nil {
			return nil, fmt.Errorf("%w: post stage: %v", ErrCorrupt, err)
		}
		scaled, err := pipelineCodec(pl, bs).Decode(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return floatconv.FromScaled(scaled, int(p64)), nil
	case kindFloatRaw:
		n64, rest, err := codec.ReadUvarint(rest)
		if err != nil || n64 > uint64(len(rest)/8) {
			return nil, fmt.Errorf("%w: raw count", ErrCorrupt)
		}
		out := make([]float64, n64)
		for i := range out {
			b := rest[i*8:]
			out[i] = math.Float64frombits(uint64(b[0]) | uint64(b[1])<<8 |
				uint64(b[2])<<16 | uint64(b[3])<<24 | uint64(b[4])<<32 |
				uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
		}
		return out, nil
	case kindInt:
		return nil, fmt.Errorf("%w: stream holds integers; use Decompress", ErrCorrupt)
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
}

func readHeader(src []byte) (kind byte, pl Pipeline, post Post, blockSize int, rest []byte, err error) {
	if len(src) < 5 || src[0] != magic0 || src[1] != magic1 {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	kind = src[2]
	pl = Pipeline(src[3])
	post = Post(src[4])
	if pl > PipelineRLE {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: unknown pipeline %d", ErrCorrupt, pl)
	}
	if post > PostRange {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: unknown post stage %d", ErrCorrupt, post)
	}
	bs64, rest, err := codec.ReadUvarint(src[5:])
	if err != nil || bs64 == 0 || bs64 > codec.MaxBlockLen {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: block size", ErrCorrupt)
	}
	return kind, pl, post, int(bs64), rest, nil
}

// Plan describes the outlier separation a planner chose for one block of
// values — the thresholds, class sizes, per-class bit-widths and the
// projected cost in bits (Definition 5 of the paper). Use it to inspect why
// BOS does or does not separate on particular data.
type Plan struct {
	// Separated is false when plain bit-packing is at least as small.
	Separated bool
	// LowerCount and UpperCount are the outlier class sizes.
	LowerCount, UpperCount int
	// MaxLower is the largest lower outlier; MinUpper the smallest upper
	// outlier (valid when the respective count is > 0).
	MaxLower, MinUpper int64
	// LowerBits, CenterBits, UpperBits are the class bit-widths
	// (alpha, beta, gamma in the paper).
	LowerBits, CenterBits, UpperBits uint
	// CostBits is the projected block body size in bits, including the
	// positional bitmap.
	CostBits int64
}

// AnalyzeBlock runs the chosen planner over one block and reports the
// separation it would use.
func AnalyzeBlock(vals []int64, p Planner) Plan {
	cp := core.PlanFor(vals, p.separation())
	return Plan{
		Separated:  cp.Separated,
		LowerCount: cp.NL,
		UpperCount: cp.NU,
		MaxLower:   cp.MaxXl,
		MinUpper:   cp.MinXu,
		LowerBits:  cp.Alpha,
		CenterBits: cp.Beta,
		UpperBits:  cp.Gamma,
		CostBits:   cp.CostBits,
	}
}
