package bos

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allOptions() []Options {
	var opts []Options
	for _, pl := range []Pipeline{PipelineDelta, PipelineRaw, PipelineRLE} {
		for _, pn := range []Planner{PlannerBitWidth, PlannerValue, PlannerMedian, PlannerNone} {
			opts = append(opts, Options{Planner: pn, Pipeline: pl})
		}
	}
	return opts
}

func TestCompressRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{42},
		{1, 2, 3, 4, 5},
		{math.MinInt64, math.MaxInt64},
		{7, 7, 7, 7, 7, 7},
		{-5, 1000000, -4, -3},
	}
	for _, opt := range allOptions() {
		for _, vals := range cases {
			enc := Compress(nil, vals, opt)
			got, err := Decompress(enc)
			if err != nil {
				t.Fatalf("%+v on %v: %v", opt, vals, err)
			}
			if len(got) != len(vals) {
				t.Fatalf("%+v: decoded %d values want %d", opt, len(got), len(vals))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%+v: value %d: got %d want %d", opt, i, got[i], vals[i])
				}
			}
		}
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(vals []int64, planner, pipeline uint8) bool {
		opt := Options{
			Planner:  Planner(planner % 4),
			Pipeline: Pipeline(pipeline % 3),
		}
		got, err := Decompress(Compress(nil, vals, opt))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	cases := [][]float64{
		nil,
		{0},
		{1.25, 2.5, -3.75},
		{0.1, 0.2, 0.3},
		{math.Pi, math.E}, // raw fallback
		{math.NaN(), math.Inf(1), -0.0},
	}
	for _, vals := range cases {
		enc := CompressFloats(nil, vals, Options{})
		got, err := DecompressFloats(enc)
		if err != nil {
			t.Fatalf("%v: %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("decoded %d values want %d", len(got), len(vals))
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("value %d: got %v want %v", i, got[i], vals[i])
			}
		}
	}
}

func TestKindMismatchErrors(t *testing.T) {
	intEnc := Compress(nil, []int64{1, 2, 3}, Options{})
	if _, err := DecompressFloats(intEnc); err == nil {
		t.Error("DecompressFloats accepted an int stream")
	}
	floatEnc := CompressFloats(nil, []float64{1.5}, Options{})
	if _, err := Decompress(floatEnc); err == nil {
		t.Error("Decompress accepted a float stream")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Decompress([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decompress(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	base := Compress(nil, vals, Options{})
	for i := 0; i < 2000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		Decompress(cor)
		DecompressFloats(cor)
	}
}

func TestSeparationHelpsOnOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, 8192)
	v := int64(0)
	for i := range vals {
		if rng.Float64() < 0.02 {
			v += rng.Int63n(1<<30) - 1<<29
		} else {
			v += int64(rng.Intn(16)) - 8
		}
		vals[i] = v
	}
	withBOS := len(Compress(nil, vals, Options{Planner: PlannerBitWidth}))
	withBP := len(Compress(nil, vals, Options{Planner: PlannerNone}))
	if withBOS >= withBP {
		t.Errorf("BOS %d bytes >= BP %d on outlier-heavy data", withBOS, withBP)
	}
}

func TestAnalyzeBlock(t *testing.T) {
	p := AnalyzeBlock([]int64{3, 2, 4, 5, 3, 2, 0, 8}, PlannerValue)
	if !p.Separated || p.LowerCount != 1 || p.UpperCount != 1 {
		t.Errorf("plan = %+v", p)
	}
	if p.CostBits != 24 {
		t.Errorf("cost = %d want 24", p.CostBits)
	}
	if p.MaxLower != 0 || p.MinUpper != 8 {
		t.Errorf("thresholds = %d/%d", p.MaxLower, p.MinUpper)
	}
}

func TestStreamWriterReader(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var want []int64
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{BlockSize: 128})
	for i := 0; i < 10; i++ {
		chunk := make([]int64, rng.Intn(300))
		for j := range chunk {
			chunk[j] = rng.Int63n(1 << 20)
		}
		want = append(want, chunk...)
		if err := w.WriteValues(chunk...); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d values want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d values, err %v", len(got), err)
	}
}

func TestStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	w.WriteValues(1, 2, 3, 4, 5)
	w.Close()
	full := buf.Bytes()
	for cut := 1; cut < len(full)-1; cut++ {
		if _, err := ReadAll(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("cut %d accepted", cut)
		}
	}
}

func BenchmarkCompressDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]int64, 8192)
	v := int64(0)
	for i := range vals {
		v += int64(rng.NormFloat64() * 100)
		vals[i] = v
	}
	var buf []byte
	b.ReportAllocs()
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		buf = Compress(buf[:0], vals, Options{})
	}
}

func BenchmarkDecompressDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, 8192)
	v := int64(0)
	for i := range vals {
		v += int64(rng.NormFloat64() * 100)
		vals[i] = v
	}
	enc := Compress(nil, vals, Options{})
	b.ReportAllocs()
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPostStagesRoundTrip(t *testing.T) {
	// A strongly periodic series: the packed blocks repeat byte patterns
	// that the entropy stage (but not bit-packing alone) can exploit —
	// the Figure 13 "BOS+LZ4 / BOS+7-Zip are complementary" setting.
	vals := make([]int64, 20000)
	v := int64(0)
	for i := range vals {
		v += int64(i%64) - 31
		vals[i] = v
	}
	base := len(Compress(nil, vals, Options{}))
	for _, post := range []Post{PostLZ, PostRange} {
		enc := Compress(nil, vals, Options{Post: post})
		got, err := Decompress(enc)
		if err != nil {
			t.Fatalf("post %d: %v", post, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("post %d: value %d mismatch", post, i)
			}
		}
		// Packed blocks share headers and structure; the entropy stage
		// should shave something off on this redundant series.
		if len(enc) >= base {
			t.Errorf("post %d: %d bytes >= plain %d", post, len(enc), base)
		}
	}
}

func TestPostStageFloats(t *testing.T) {
	vals := []float64{1.5, 2.5, 3.5, 1.5, 2.5, 3.5, 1.5, 2.5}
	enc := CompressFloats(nil, vals, Options{Post: PostRange})
	got, err := DecompressFloats(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}
