package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"bos/internal/cluster"
	"bos/internal/engine"
	"bos/internal/maintain"
	"bos/internal/server"
)

// Cluster mode: -cluster N (or -shard-map path) swaps the single engine for
// an internal/cluster Router over N shards. The shard map lives at
// <dir>/shardmap.json unless -shard-map points elsewhere; a missing map is
// bootstrapped as N local shards and saved, an existing one is loaded and
// validated (so a map written under a different format version or hash
// function refuses to serve rather than misrouting reads).

const defaultShardMapName = "shardmap.json"

// loadOrInitManifest resolves the shard map for a cluster of n shards rooted
// at dir.
func loadOrInitManifest(dir, mapPath string, n int) (*cluster.Manifest, string, error) {
	if mapPath == "" {
		mapPath = filepath.Join(dir, defaultShardMapName)
	}
	if _, err := os.Stat(mapPath); errors.Is(err, os.ErrNotExist) {
		if n < 2 {
			return nil, "", fmt.Errorf("bosserver: shard map %s does not exist and -cluster is %d", mapPath, n)
		}
		man := cluster.DefaultManifest(n)
		if err := os.MkdirAll(filepath.Dir(mapPath), 0o755); err != nil {
			return nil, "", err
		}
		if err := man.Save(mapPath); err != nil {
			return nil, "", err
		}
		return man, mapPath, nil
	}
	man, err := cluster.LoadManifest(mapPath)
	if err != nil {
		return nil, "", err
	}
	if n > 1 && len(man.Shards) != n {
		return nil, "", fmt.Errorf("bosserver: -cluster %d disagrees with shard map %s (%d shards); drop the flag or plan a rebalance", n, mapPath, len(man.Shards))
	}
	return man, mapPath, nil
}

// openRouter opens every shard in the manifest: local shards get their own
// engine (and, when maintCfg is set, their own maintenance loop, started);
// remote shards get a retrying client. On any failure the already-open
// shards are closed.
func openRouter(man *cluster.Manifest, root string, opt engine.Options, maintCfg *maintain.Config) (*cluster.Router, error) {
	shards := make([]cluster.Shard, 0, len(man.Shards))
	fail := func(err error) (*cluster.Router, error) {
		for _, s := range shards {
			s.Close() // best-effort unwind after a failed open
		}
		return nil, err
	}
	for _, spec := range man.Shards {
		switch spec.Backend {
		case cluster.BackendLocal:
			o := opt
			o.Dir = cluster.ResolveDir(root, spec.Dir)
			eng, err := engine.Open(o)
			if err != nil {
				return fail(fmt.Errorf("bosserver: shard %d: %w", spec.ID, err))
			}
			var mnt *maintain.Maintainer
			if maintCfg != nil {
				mnt = maintain.New(eng, *maintCfg)
				mnt.Start()
			}
			shards = append(shards, cluster.NewLocalShard(eng, mnt, o.Dir))
		case cluster.BackendRemote:
			shards = append(shards, cluster.NewRemoteShard(spec.Addr, nil,
				server.WithRetry(3, 50*time.Millisecond)))
		default:
			return fail(fmt.Errorf("bosserver: shard %d: unknown backend %q", spec.ID, spec.Backend))
		}
	}
	return cluster.New(man, shards)
}

// runRebalance plans (offline) the moves from the serving shard map to the
// map at newMapPath, over the series currently in the cluster, and prints the
// plan as JSON. It never moves data.
func runRebalance(man *cluster.Manifest, root string, opt engine.Options, newMapPath string) error {
	newMan, err := cluster.LoadManifest(newMapPath)
	if err != nil {
		return err
	}
	router, err := openRouter(man, root, opt, nil)
	if err != nil {
		return err
	}
	defer router.Close() // read-only open, plan already emitted
	series, err := router.Series()
	if err != nil {
		return err
	}
	plan, err := cluster.PlanRebalance(man, newMan, series)
	if err != nil {
		return err
	}
	return emitJSON(plan)
}

// clusterBenchReport is the BENCH_cluster.json shape: the same workload run
// once against a single engine and once against an in-process cluster, with
// the ingest speedup called out.
type clusterBenchReport struct {
	Config struct {
		benchConfig
		Shards  int  `json:"shards"`
		VNodes  int  `json:"vnodes"`
		SyncWAL bool `json:"sync_wal"`
		// Cores is GOMAXPROCS at run time. It bounds what sharding can win:
		// on one core only the WAL-fsync overlap shows up; the per-shard CPU
		// lanes (encode, parse, insert) need real cores to run concurrently.
		Cores int `json:"cores"`
	} `json:"config"`
	Single  benchReport `json:"single"`
	Cluster benchReport `json:"cluster"`
	Speedup struct {
		IngestPointsPerSec float64 `json:"ingest_points_per_sec"`
	} `json:"speedup"`
}

// runClusterBench benches the same config twice — single-engine baseline,
// then an n-shard in-process cluster — under root, and emits the combined
// report.
func runClusterBench(root string, opt engine.Options, cfg benchConfig, n int) error {
	single := opt
	single.Dir = filepath.Join(root, "bench-single")
	eng, err := engine.Open(single)
	if err != nil {
		return err
	}
	singleRep, err := benchRun(server.NewEngineBackend(eng), cfg)
	if cerr := eng.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	man := cluster.DefaultManifest(n)
	router, err := cluster.Open(man, filepath.Join(root, "bench-cluster"), opt)
	if err != nil {
		return err
	}
	clusterRep, err := benchRun(router, cfg)
	if cerr := router.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	var out clusterBenchReport
	out.Config.benchConfig = cfg
	out.Config.Shards = n
	out.Config.VNodes = man.VNodes
	out.Config.SyncWAL = opt.SyncWAL
	out.Config.Cores = runtime.GOMAXPROCS(0)
	out.Single = singleRep
	out.Cluster = clusterRep
	if singleRep.Ingest.PointsSec > 0 {
		out.Speedup.IngestPointsPerSec = round3(clusterRep.Ingest.PointsSec / singleRep.Ingest.PointsSec)
	}
	return emitJSON(out)
}
