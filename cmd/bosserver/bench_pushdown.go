package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"bos/internal/engine"
	"bos/internal/pushdown"
	"bos/internal/tsfile"
)

// The pushdown bench: load a time-ordered series into many disjoint
// single-chunk files (one flush per chunk, the engine's steady state), then
// answer the same windowed aggregate, whole-range aggregate and selective
// value filter two ways — the classic full-decode scan fold, and the
// compressed-domain executor — and report the per-operation times, the
// speedups, and which tier answered each chunk. Results are verified equal
// between the passes before any number is reported; BENCH_pushdown.json in
// the repo root records the checked-in baseline.
//
// The decoded-chunk cache is disabled for both passes: the comparison is
// decode work avoided, not cache hits traded.

type pushdownBenchConfig struct {
	Packer    string `json:"packer"`
	Points    int    `json:"points"`
	ChunkSize int    `json:"chunk_size"`
	Window    int64  `json:"window"`
	Iters     int    `json:"iters"`
	Seed      int64  `json:"seed"`
}

// pushdownOpReport compares one operation across the two passes.
type pushdownOpReport struct {
	FullMsPerOp     float64 `json:"full_ms_per_op"`
	PushdownMsPerOp float64 `json:"pushdown_ms_per_op"`
	Speedup         float64 `json:"speedup"`
}

type pushdownBenchReport struct {
	Config    pushdownBenchConfig `json:"config"`
	Windowed  pushdownOpReport    `json:"windowed"`
	Aggregate pushdownOpReport    `json:"aggregate"`
	Filtered  pushdownOpReport    `json:"filtered"`
	// Tiers are the engine's lifetime counters after the pushdown pass:
	// windowed/aggregate chunks land in the stats tier, the selective filter
	// in the inlier tier (outlier planes only).
	Tiers pushdown.Snapshot `json:"tiers"`
}

func runPushdownBench(dir string, opts engine.Options, points int, seed int64) (err error) {
	const chunkSize = 4096
	opts.Dir = dir
	opts.CacheBytes = -1
	// One explicit flush per batch writes one chunk per file; skip the flush
	// threshold so batches never split.
	opts.FlushThreshold = 1 << 30
	eng, err := engine.Open(opts)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := eng.Close(); err == nil {
			err = cerr
		}
	}()

	cfg := pushdownBenchConfig{
		Packer:    opts.File.Packer.Name(),
		Points:    points,
		ChunkSize: chunkSize,
		Window:    2 * chunkSize,
		Iters:     20,
		Seed:      seed,
	}
	const series = "root.bench.pushdown"
	rng := rand.New(rand.NewSource(seed))
	const outlierFloor = 1 << 18
	for base := 0; base < points; base += chunkSize {
		n := min(chunkSize, points-base)
		pts := make([]tsfile.Point, n)
		for i := range pts {
			// Same IoT shape as the serving bench: a tight inlier band with
			// ~1% spikes, so the filter below can skip whole inlier planes.
			v := int64(rng.NormFloat64()*50) + 1000
			if rng.Intn(100) == 0 {
				v += outlierFloor + int64(rng.Intn(1<<19))
			}
			pts[i] = tsfile.Point{T: int64(base + i), V: v}
		}
		if err := eng.InsertBatch(series, pts); err != nil {
			return err
		}
		if err := eng.Flush(); err != nil {
			return err
		}
	}
	maxT := int64(points - 1)

	// Pushdown pass.
	var pdWindowed []engine.Bucket
	windowedPD, err := timeOp(cfg.Iters, func() error {
		pdWindowed, err = eng.Downsample(series, 0, maxT, cfg.Window)
		return err
	})
	if err != nil {
		return err
	}
	var pdAgg engine.Bucket
	aggPD, err := timeOp(cfg.Iters, func() error {
		pdAgg, err = eng.Aggregate(series, 0, maxT)
		return err
	})
	if err != nil {
		return err
	}
	var pdFiltered []tsfile.Point
	filteredPD, err := timeOp(cfg.Iters, func() error {
		pdFiltered = pdFiltered[:0]
		return eng.QueryFilterEach(series, 0, maxT, outlierFloor, math.MaxInt64, func(p tsfile.Point) error {
			pdFiltered = append(pdFiltered, p)
			return nil
		})
	})
	if err != nil {
		return err
	}
	tiers := readTiers(eng)

	// Full-decode reference pass: stream every point and fold client-side,
	// the pre-pushdown serving strategy.
	var refWindowed []engine.Bucket
	windowedRef, err := timeOp(cfg.Iters, func() error {
		w := pushdown.NewWindows(0, cfg.Window)
		err := eng.QueryEach(series, 0, maxT, func(p tsfile.Point) error {
			w.Add(p.T, p.V)
			return nil
		})
		refWindowed = w.Buckets()
		return err
	})
	if err != nil {
		return err
	}
	var refAgg engine.Bucket
	aggRef, err := timeOp(cfg.Iters, func() error {
		w := pushdown.NewWindows(0, 0)
		err := eng.QueryEach(series, 0, maxT, func(p tsfile.Point) error {
			w.Add(p.T, p.V)
			return nil
		})
		if b := w.Buckets(); len(b) > 0 {
			refAgg = b[0]
		} else {
			refAgg = engine.Bucket{}
		}
		return err
	})
	if err != nil {
		return err
	}
	var refFiltered []tsfile.Point
	filteredRef, err := timeOp(cfg.Iters, func() error {
		refFiltered = refFiltered[:0]
		return eng.QueryEach(series, 0, maxT, func(p tsfile.Point) error {
			if p.V >= outlierFloor {
				refFiltered = append(refFiltered, p)
			}
			return nil
		})
	})
	if err != nil {
		return err
	}

	// The speedup only counts if the answers agree.
	if len(pdWindowed) != len(refWindowed) {
		return fmt.Errorf("bench: windowed pushdown %d buckets, full decode %d", len(pdWindowed), len(refWindowed))
	}
	for i := range refWindowed {
		if pdWindowed[i] != refWindowed[i] {
			return fmt.Errorf("bench: windowed bucket %d: pushdown %+v, full decode %+v", i, pdWindowed[i], refWindowed[i])
		}
	}
	if pdAgg != refAgg {
		return fmt.Errorf("bench: aggregate: pushdown %+v, full decode %+v", pdAgg, refAgg)
	}
	if len(pdFiltered) != len(refFiltered) {
		return fmt.Errorf("bench: filtered pushdown %d points, full decode %d", len(pdFiltered), len(refFiltered))
	}
	for i := range refFiltered {
		if pdFiltered[i] != refFiltered[i] {
			return fmt.Errorf("bench: filtered point %d: pushdown %+v, full decode %+v", i, pdFiltered[i], refFiltered[i])
		}
	}

	rep := pushdownBenchReport{
		Config:    cfg,
		Windowed:  opReport(windowedRef, windowedPD, cfg.Iters),
		Aggregate: opReport(aggRef, aggPD, cfg.Iters),
		Filtered:  opReport(filteredRef, filteredPD, cfg.Iters),
		Tiers:     tiers,
	}
	return emitJSON(rep)
}

// timeOp runs fn iters times and returns the total wall time.
func timeOp(iters int, fn func() error) (time.Duration, error) {
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(t0), nil
}

func opReport(full, pd time.Duration, iters int) pushdownOpReport {
	rep := pushdownOpReport{
		FullMsPerOp:     millis(full / time.Duration(iters)),
		PushdownMsPerOp: millis(pd / time.Duration(iters)),
	}
	if pd > 0 {
		rep.Speedup = round3(float64(full) / float64(pd))
	}
	return rep
}

func readTiers(eng *engine.Engine) pushdown.Snapshot { return eng.Stats().Pushdown }
