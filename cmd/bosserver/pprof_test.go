package main

import (
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestStartPprofStops pins the pprof listener lifecycle: the endpoint serves
// while running and is fully torn down by stop — the socket stops accepting,
// so a graceful shutdown does not leave a profiler attached to a closing
// engine.
func TestStartPprofStops(t *testing.T) {
	stop, addr, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/debug/pprof/", addr)
	resp, err := http.Get(url)
	if err != nil {
		stop()
		t.Fatalf("pprof endpoint not serving: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		stop()
		t.Fatalf("pprof index returned %d, want 200", resp.StatusCode)
	}

	stop() // must close the listener and join the serving goroutine

	if conn, err := net.DialTimeout("tcp", addr.String(), 500*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("pprof listener still accepting connections after stop")
	}
}
