// Command bosserver serves the BOS storage engine over HTTP (see
// internal/server for the API) and doubles as a load generator for it.
//
// Serve mode (default): open the data directory and listen until SIGINT or
// SIGTERM, then shut down gracefully — stop accepting, drain in-flight
// requests and the ingest group committer, flush the memtable:
//
//	bosserver -dir ./data -addr :8086 -packer bosb
//
// Ingest and query with any HTTP client:
//
//	curl -X POST --data-binary 'root.d1.temp,100,42' localhost:8086/ingest
//	curl 'localhost:8086/query?series=root.d1.temp&from=0&to=200'
//	curl 'localhost:8086/stats'
//
// Bench mode: spin up an in-process server over -dir, run -writers concurrent
// ingest clients and -readers query clients against it, and report points/sec
// plus p50/p99 latency as JSON on stdout:
//
//	bosserver -bench -dir ./benchdata -writers 8 -readers 4 -points 400000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bos/internal/engine"
	"bos/internal/maintain"
	"bos/internal/packers"
	"bos/internal/server"
	"bos/internal/tsfile"
)

func main() {
	var (
		dir    = flag.String("dir", "", "data directory (required)")
		addr   = flag.String("addr", "127.0.0.1:8086", "listen address for serve mode")
		packer = flag.String("packer", "bosb", "packing operator: "+joinNames())
		flush  = flag.Int("flush", 0, "memtable flush threshold in points (0 = engine default)")
		sync   = flag.Bool("sync", false, "fsync the WAL on every insert batch (group commit shares one fsync across concurrent batches)")
		encode = flag.Int("encode-workers", 0, "parallel chunk encoders for flush and compaction (0 = GOMAXPROCS)")
		cache  = flag.Int64("cache-bytes", 0, "decoded-chunk cache budget in bytes (0 = 64 MiB default, negative = disabled)")
		pprofA = flag.String("pprof", "", "listen address for net/http/pprof on a separate listener (empty = disabled)")

		doMaint   = flag.Bool("maintain", true, "serve: run background storage maintenance")
		maintIvl  = flag.Duration("maintain-interval", 30*time.Second, "serve: base maintenance interval (jittered)")
		maintRate = flag.Int64("maintain-rate", 0, "serve: maintenance rate limit in input bytes/sec (0 = unlimited)")
		adaptive  = flag.Bool("adaptive", true, "serve: adaptive per-series repacking during maintenance")

		bench    = flag.Bool("bench", false, "run the load generator instead of serving")
		writers  = flag.Int("writers", 8, "bench: concurrent ingest clients")
		readers  = flag.Int("readers", 4, "bench: concurrent query clients")
		points   = flag.Int("points", 400000, "bench: total points to ingest")
		batch    = flag.Int("batch", 1000, "bench: points per ingest request")
		seed     = flag.Int64("seed", 1, "bench: value generator seed")
		perSerie = flag.Int("series-per-writer", 4, "bench: series per writer")
	)
	flag.Parse()
	if *dir == "" {
		fatal(errors.New("-dir is required"))
	}
	p, err := packers.ByName(*packer)
	if err != nil {
		fatal(err)
	}
	eng, err := engine.Open(engine.Options{
		Dir:            *dir,
		FlushThreshold: *flush,
		SyncWAL:        *sync,
		EncodeWorkers:  *encode,
		CacheBytes:     *cache,
		File:           tsfile.Options{Packer: p},
	})
	if err != nil {
		fatal(err)
	}
	if *pprofA != "" {
		// The pprof handlers self-register on http.DefaultServeMux; serving
		// it on its own listener keeps profiling off the public API address.
		ln, err := net.Listen("tcp", *pprofA)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bosserver: pprof on http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil)
	}
	if *bench {
		err = runBench(eng, benchConfig{
			Packer:          p.Name(),
			Writers:         *writers,
			Readers:         *readers,
			Points:          *points,
			Batch:           *batch,
			Seed:            *seed,
			SeriesPerWriter: *perSerie,
		})
		if cerr := eng.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	var mnt *maintain.Maintainer
	if *doMaint {
		mnt = maintain.New(eng, maintain.Config{
			Interval:    *maintIvl,
			BytesPerSec: *maintRate,
			Adaptive:    *adaptive,
		})
	}
	if err := serve(eng, mnt, *addr, p.Name()); err != nil {
		fatal(err)
	}
}

func serve(eng *engine.Engine, mnt *maintain.Maintainer, addr, packerName string) error {
	api, err := server.New(server.Options{Engine: eng, Maintainer: mnt, PackerName: packerName})
	if err != nil {
		return err
	}
	if mnt != nil {
		mnt.Start()
	}
	httpSrv := &http.Server{Addr: addr, Handler: api.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bosserver: serving on %s (packer %s)\n", ln.Addr(), packerName)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "bosserver: %v, shutting down\n", s)
	case err := <-errc:
		return err
	}
	// Drain: stop the listener and in-flight HTTP, then the ingest
	// committer, then the maintenance scheduler (waits out any in-flight
	// compaction), then flush + close the engine. Order matters: every
	// acknowledged write reaches the engine before Close, and no compaction
	// can be mid-commit when the engine shuts down.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := api.Close(); err != nil {
		return err
	}
	if mnt != nil {
		mnt.Stop()
		fmt.Fprintf(os.Stderr, "bosserver: maintenance stopped (%s)\n", mnt.Stats())
	}
	if err := eng.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "bosserver: clean shutdown")
	return nil
}

func joinNames() string {
	out := ""
	for i, n := range packers.Names() {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bosserver:", err)
	os.Exit(1)
}
