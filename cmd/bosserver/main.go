// Command bosserver serves the BOS storage engine over HTTP (see
// internal/server for the API) and doubles as a load generator for it.
//
// Serve mode (default): open the data directory and listen until SIGINT or
// SIGTERM, then shut down gracefully — stop accepting, drain in-flight
// requests and the ingest group committer, flush the memtable:
//
//	bosserver -dir ./data -addr :8086 -packer bosb
//
// Ingest and query with any HTTP client:
//
//	curl -X POST --data-binary 'root.d1.temp,100,42' localhost:8086/ingest
//	curl 'localhost:8086/query?series=root.d1.temp&from=0&to=200'
//	curl 'localhost:8086/stats'
//
// Bench mode: spin up an in-process server over -dir, run -writers concurrent
// ingest clients and -readers query clients against it, and report points/sec
// plus p50/p99 latency as JSON on stdout:
//
//	bosserver -bench -dir ./benchdata -writers 8 -readers 4 -points 400000
//
// -bench-pushdown compares the compressed-domain query executor (footer
// statistics + inlier-plane partial decode) against full-decode scan folds on
// the same windowed aggregate, whole-range aggregate and value filter:
//
//	bosserver -bench-pushdown -dir ./benchdata -points 400000
//
// Cluster mode: -cluster N shards the keyspace across N in-process engines
// behind the same HTTP API (consistent hashing on series names; shard map
// persisted at <dir>/shardmap.json, override with -shard-map). -rebalance
// newmap.json prints the per-series move plan onto a new map and exits.
// -bench -cluster N runs the workload against a single engine and an N-shard
// cluster and reports both with the ingest speedup:
//
//	bosserver -dir ./data -cluster 4
//	bosserver -bench -dir ./benchdata -cluster 4 -writers 16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bos/internal/cluster"
	"bos/internal/engine"
	"bos/internal/maintain"
	"bos/internal/packers"
	"bos/internal/server"
	"bos/internal/tsfile"
)

func main() {
	var (
		dir    = flag.String("dir", "", "data directory (required)")
		addr   = flag.String("addr", "127.0.0.1:8086", "listen address for serve mode")
		packer = flag.String("packer", "bosb", "packing operator: "+joinNames())
		flush  = flag.Int("flush", 0, "memtable flush threshold in points (0 = engine default)")
		sync   = flag.Bool("sync", false, "fsync the WAL on every insert batch (group commit shares one fsync across concurrent batches)")
		encode = flag.Int("encode-workers", 0, "parallel chunk encoders for flush and compaction (0 = GOMAXPROCS)")
		cache  = flag.Int64("cache-bytes", 0, "decoded-chunk cache budget in bytes (0 = 64 MiB default, negative = disabled)")
		pprofA = flag.String("pprof", "", "listen address for net/http/pprof on a separate listener (empty = disabled)")

		clusterN  = flag.Int("cluster", 1, "shard count; >1 serves a sharded cluster of in-process engines (see -shard-map)")
		shardMap  = flag.String("shard-map", "", "cluster: shard-map manifest path (default <dir>/shardmap.json; may name remote shards)")
		rebalance = flag.String("rebalance", "", "cluster: plan moves from the serving shard map onto the manifest at this path, print JSON, exit")

		doMaint   = flag.Bool("maintain", true, "serve: run background storage maintenance")
		maintIvl  = flag.Duration("maintain-interval", 30*time.Second, "serve: base maintenance interval (jittered)")
		maintRate = flag.Int64("maintain-rate", 0, "serve: maintenance rate limit in input bytes/sec (0 = unlimited)")
		adaptive  = flag.Bool("adaptive", true, "serve: adaptive per-series repacking during maintenance")

		bench         = flag.Bool("bench", false, "run the load generator instead of serving")
		benchPushdown = flag.Bool("bench-pushdown", false, "bench the compressed-domain query executor against full decode, print JSON, exit")
		writers       = flag.Int("writers", 8, "bench: concurrent ingest clients")
		readers       = flag.Int("readers", 4, "bench: concurrent query clients")
		points        = flag.Int("points", 400000, "bench: total points to ingest")
		batch         = flag.Int("batch", 1000, "bench: points per ingest request")
		seed          = flag.Int64("seed", 1, "bench: value generator seed")
		perSerie      = flag.Int("series-per-writer", 4, "bench: series per writer")
	)
	flag.Parse()
	if *dir == "" {
		fatal(errors.New("-dir is required"))
	}
	p, err := packers.ByName(*packer)
	if err != nil {
		fatal(err)
	}
	engOpts := engine.Options{
		FlushThreshold: *flush,
		SyncWAL:        *sync,
		EncodeWorkers:  *encode,
		CacheBytes:     *cache,
		File:           tsfile.Options{Packer: p},
	}
	if *pprofA != "" {
		stopPprof, pprofAddr, err := startPprof(*pprofA)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bosserver: pprof on http://%s/debug/pprof/\n", pprofAddr)
		defer stopPprof()
	}

	benchCfg := benchConfig{
		Packer:          p.Name(),
		Writers:         *writers,
		Readers:         *readers,
		Points:          *points,
		Batch:           *batch,
		Seed:            *seed,
		SeriesPerWriter: *perSerie,
	}
	maintCfg := maintain.Config{
		Interval:    *maintIvl,
		BytesPerSec: *maintRate,
		Adaptive:    *adaptive,
	}

	if *benchPushdown {
		if err := runPushdownBench(*dir, engOpts, *points, *seed); err != nil {
			fatal(err)
		}
		return
	}

	// Cluster mode: any of the cluster flags swaps the single engine for a
	// sharded Router behind the same HTTP API. The default path below stays
	// exactly what it was.
	if *clusterN > 1 || *shardMap != "" || *rebalance != "" {
		if *bench {
			if *clusterN < 2 {
				fatal(errors.New("-bench cluster comparison needs -cluster >= 2"))
			}
			if err := runClusterBench(*dir, engOpts, benchCfg, *clusterN); err != nil {
				fatal(err)
			}
			return
		}
		man, mapPath, err := loadOrInitManifest(*dir, *shardMap, *clusterN)
		if err != nil {
			fatal(err)
		}
		if *rebalance != "" {
			if err := runRebalance(man, *dir, engOpts, *rebalance); err != nil {
				fatal(err)
			}
			return
		}
		var mc *maintain.Config
		if *doMaint {
			mc = &maintCfg
		}
		router, err := openRouter(man, *dir, engOpts, mc)
		if err != nil {
			fatal(err)
		}
		if err := serveCluster(router, *addr, p.Name(), mapPath); err != nil {
			fatal(err)
		}
		return
	}

	engOpts.Dir = *dir
	eng, err := engine.Open(engOpts)
	if err != nil {
		fatal(err)
	}
	if *bench {
		err = runBench(server.NewEngineBackend(eng), benchCfg)
		if cerr := eng.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	var mnt *maintain.Maintainer
	if *doMaint {
		mnt = maintain.New(eng, maintCfg)
	}
	if err := serve(eng, mnt, *addr, p.Name()); err != nil {
		fatal(err)
	}
}

func serve(eng *engine.Engine, mnt *maintain.Maintainer, addr, packerName string) error {
	api, err := server.New(server.Options{Engine: eng, Maintainer: mnt, PackerName: packerName})
	if err != nil {
		return err
	}
	if mnt != nil {
		mnt.Start()
	}
	httpSrv := &http.Server{Addr: addr, Handler: api.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bosserver: serving on %s (packer %s)\n", ln.Addr(), packerName)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "bosserver: %v, shutting down\n", s)
	case err := <-errc:
		return err
	}
	// Drain: stop the listener and in-flight HTTP, then the ingest
	// committer, then the maintenance scheduler (waits out any in-flight
	// compaction), then flush + close the engine. Order matters: every
	// acknowledged write reaches the engine before Close, and no compaction
	// can be mid-commit when the engine shuts down.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := api.Close(); err != nil {
		return err
	}
	if mnt != nil {
		mnt.Stop()
		fmt.Fprintf(os.Stderr, "bosserver: maintenance stopped (%s)\n", mnt.Stats())
	}
	if err := eng.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "bosserver: clean shutdown")
	return nil
}

// serveCluster is serve for a sharded Router: same listener, signal handling
// and drain order, but shard lifecycles (each local engine's maintenance
// loop, flush and close) belong to the router.
func serveCluster(router *cluster.Router, addr, packerName, mapPath string) error {
	api, err := server.New(server.Options{Backend: router, PackerName: packerName})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: api.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bosserver: serving %d-shard cluster on %s (packer %s, shard map %s)\n",
		len(router.Shards()), ln.Addr(), packerName, mapPath)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "bosserver: %v, shutting down\n", s)
	case err := <-errc:
		return err
	}
	// Same drain order as single-engine serve: listener and in-flight HTTP,
	// then the ingest committer, then every shard (maintainer stop + engine
	// flush/close, in parallel across shards).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := api.Close(); err != nil {
		return err
	}
	if err := router.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "bosserver: clean shutdown")
	return nil
}

// startPprof serves net/http/pprof's self-registered DefaultServeMux
// handlers on their own listener, keeping profiling off the public API
// address. The returned stop closes the server and waits the serving
// goroutine out, so a graceful shutdown never leaves a profiler attached to
// an engine that is mid-teardown.
func startPprof(addr string) (stop func(), bound net.Addr, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	return func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bosserver: pprof shutdown:", err)
		}
		<-errc
	}, ln.Addr(), nil
}

func joinNames() string {
	out := ""
	for i, n := range packers.Names() {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bosserver:", err)
	os.Exit(1)
}
