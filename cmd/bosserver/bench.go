package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"bos/internal/server"
	"bos/internal/tsfile"
)

// The load generator: an in-process server over the given engine, hammered
// by concurrent writer and reader clients through real HTTP, so the numbers
// include the wire format, the group committer and the storage engine — the
// end-to-end serving cost, not just the packer. Output is one JSON document
// on stdout; BENCH_server.json in the repo root records the checked-in
// baseline trajectory.

type benchConfig struct {
	Packer          string `json:"packer"`
	Writers         int    `json:"writers"`
	Readers         int    `json:"readers"`
	Points          int    `json:"points"`
	Batch           int    `json:"batch"`
	Seed            int64  `json:"seed"`
	SeriesPerWriter int    `json:"series_per_writer"`
}

type sideReport struct {
	Requests  int     `json:"requests"`
	Points    int64   `json:"points,omitempty"`
	Seconds   float64 `json:"seconds"`
	PerSec    float64 `json:"per_sec"`
	PointsSec float64 `json:"points_per_sec,omitempty"`
	P50Millis float64 `json:"p50_ms"`
	P90Millis float64 `json:"p90_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`
	Errors    int     `json:"errors"`
}

type benchReport struct {
	Config  benchConfig `json:"config"`
	Ingest  sideReport  `json:"ingest"`
	Query   sideReport  `json:"query"`
	Storage struct {
		Files         int     `json:"files"`
		DiskPoints    int     `json:"disk_points"`
		DiskBytes     int64   `json:"disk_bytes"`
		BytesPerPoint float64 `json:"bytes_per_point"`
		IngestGroups  int64   `json:"ingest_groups"`
		WALGroups     int64   `json:"wal_groups"`
		WALRecords    int64   `json:"wal_records"`
	} `json:"storage"`
}

func runBench(be server.Backend, cfg benchConfig) error {
	rep, err := benchRun(be, cfg)
	if err != nil {
		return err
	}
	return emitJSON(rep)
}

// benchRun drives one full load-generation pass against a backend — a single
// engine or a sharded router, same driver either way — and returns the report.
func benchRun(be server.Backend, cfg benchConfig) (benchReport, error) {
	var zero benchReport
	if cfg.Writers < 1 || cfg.Readers < 0 || cfg.Batch < 1 || cfg.Points < cfg.Writers {
		return zero, fmt.Errorf("bench: bad config %+v", cfg)
	}
	api, err := server.New(server.Options{Backend: be, PackerName: cfg.Packer})
	if err != nil {
		return zero, err
	}
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	perWriter := cfg.Points / cfg.Writers
	var writerWG, readerWG sync.WaitGroup
	writeLat := make([][]time.Duration, cfg.Writers)
	writeErrs := make([]int, cfg.Writers)
	done := make(chan struct{})

	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			c := server.NewClient(ts.URL, newBenchHTTPClient())
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			sent := 0
			for sent < perWriter {
				n := cfg.Batch
				if perWriter-sent < n {
					n = perWriter - sent
				}
				series := fmt.Sprintf("root.bench.w%d.s%d", w, rng.Intn(cfg.SeriesPerWriter))
				pts := make([]tsfile.Point, n)
				base := int64(sent)
				for i := range pts {
					// IoT-shaped values: a wandering center with occasional
					// spikes, the distribution BOS separates outliers from.
					v := int64(rng.NormFloat64()*50) + 1000
					if rng.Intn(100) == 0 {
						v += int64(rng.Intn(1 << 20))
					}
					pts[i] = tsfile.Point{T: base + int64(i), V: v}
				}
				t0 := time.Now()
				_, err := c.Ingest(series, pts)
				writeLat[w] = append(writeLat[w], time.Since(t0))
				if err != nil {
					if writeErrs[w]++; writeErrs[w] > 100 {
						return // persistent failure; report it, don't spin
					}
				} else {
					sent += n
				}
			}
		}(w)
	}

	readLat := make([][]time.Duration, cfg.Readers)
	readErrs := make([]int, cfg.Readers)
	var readPoints int64
	var readMu sync.Mutex
	for r := 0; r < cfg.Readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			c := server.NewClient(ts.URL, newBenchHTTPClient())
			rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(r)))
			var got int64
			for {
				select {
				case <-done:
					readMu.Lock()
					readPoints += got
					readMu.Unlock()
					return
				default:
				}
				w := rng.Intn(cfg.Writers)
				series := fmt.Sprintf("root.bench.w%d.s%d", w, rng.Intn(cfg.SeriesPerWriter))
				lo := int64(rng.Intn(perWriter + 1))
				hi := lo + int64(rng.Intn(2048))
				t0 := time.Now()
				pts, err := c.Query(series, lo, hi)
				readLat[r] = append(readLat[r], time.Since(t0))
				if err != nil {
					// A 404 is a reader outrunning the writer that will
					// create the series — an empty result, not a failure.
					if !strings.Contains(err.Error(), "404") {
						readErrs[r]++
					}
					continue
				}
				got += int64(len(pts))
			}
		}(r)
	}

	// Writers drive the run length; readers stop when ingest completes.
	writerWG.Wait()
	ingestSeconds := time.Since(start).Seconds()
	close(done)
	readerWG.Wait()
	wallSeconds := time.Since(start).Seconds()

	rep := benchReport{Config: cfg}
	rep.Ingest = summarize(writeLat, writeErrs, ingestSeconds)
	rep.Ingest.Points = int64(perWriter * cfg.Writers)
	rep.Ingest.PointsSec = round3(float64(rep.Ingest.Points) / ingestSeconds)
	rep.Query = summarize(readLat, readErrs, wallSeconds)
	rep.Query.Points = readPoints

	if err := be.Flush(); err != nil {
		return zero, err
	}
	st, err := server.NewClient(ts.URL, newBenchHTTPClient()).Stats()
	if err != nil {
		return zero, err
	}
	rep.Storage.Files = st.Files
	rep.Storage.DiskPoints = st.DiskPoints
	rep.Storage.DiskBytes = st.DiskBytes
	rep.Storage.BytesPerPoint = st.BytesPerPoint
	rep.Storage.IngestGroups = st.IngestGroups
	rep.Storage.WALGroups = st.WALGroups
	rep.Storage.WALRecords = st.WALRecords

	ts.Close()
	if err := api.Close(); err != nil {
		return zero, err
	}
	return rep, nil
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// newBenchHTTPClient returns an HTTP client with a connection pool sized for
// the bench fan-out.
func newBenchHTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
}

func summarize(lat [][]time.Duration, errs []int, seconds float64) sideReport {
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := sideReport{Requests: len(all), Seconds: round3(seconds)}
	for _, e := range errs {
		rep.Errors += e
	}
	if len(all) == 0 {
		return rep
	}
	rep.PerSec = round3(float64(len(all)) / seconds)
	rep.P50Millis = millis(percentile(all, 50))
	rep.P90Millis = millis(percentile(all, 90))
	rep.P99Millis = millis(percentile(all, 99))
	rep.MaxMillis = millis(all[len(all)-1])
	return rep
}

// percentile returns the p-th percentile of sorted durations
// (nearest-rank method).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func millis(d time.Duration) float64 { return round3(float64(d) / float64(time.Millisecond)) }

func round3(f float64) float64 { return float64(int64(f*1000+0.5)) / 1000 }
