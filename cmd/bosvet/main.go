// Command bosvet runs the module's static-analysis suite: the lock-order,
// checked-error, hot-path and mutex-copy analyzers from internal/analysis.
//
// Usage:
//
//	bosvet [-list] [packages]
//
// Package patterns follow the usual go tool shapes ("./...", "./internal/engine");
// the default is "./..." from the current directory's module. The command
// prints one line per diagnostic and exits with status 1 when any
// unsuppressed diagnostic was found, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"bos/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the configured analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bosvet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosvet: %v\n", err)
		os.Exit(2)
	}
	modDir, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosvet: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	drv := &analysis.Driver{
		Loader:    analysis.NewLoader(modDir, modPath),
		Analyzers: analyzers,
	}
	diags, err := drv.CheckPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosvet: %v\n", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		analysis.Print(os.Stdout, cwd, diags)
		os.Exit(1)
	}
}
