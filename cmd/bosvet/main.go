// Command bosvet runs the module's static-analysis suite: the lock-order,
// checked-error, hot-path, mutex-copy, atomic-field, goroutine-lifecycle and
// escape-regression analyzers from internal/analysis.
//
// Usage:
//
//	bosvet [-list] [-v] [-json] [-escape-baseline] [packages]
//
// Package patterns follow the usual go tool shapes ("./...", "./internal/engine");
// the default is "./..." from the current directory's module. The command
// prints one line per diagnostic and exits with status 1 when any
// unsuppressed diagnostic was found, 2 on usage or load errors.
//
// -json emits the findings as a JSON array of {file,line,col,analyzer,message}
// objects (CI archives it as an artifact); -v adds per-analyzer wall time on
// stderr; -escape-baseline recomputes the hot-path escape allowlist from the
// current tree and prints it on stdout — redirect it over
// internal/analysis/escape_baseline.txt to bless the current escapes, or diff
// it against the committed file to gate drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bos/internal/analysis"
)

// jsonDiag is the machine-readable finding shape for -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the configured analyzers and exit")
	verbose := flag.Bool("v", false, "report per-analyzer wall time on stderr")
	asJSON := flag.Bool("json", false, "print diagnostics as a JSON array on stdout")
	escBaseline := flag.Bool("escape-baseline", false, "recompute the hot-path escape allowlist and print it on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bosvet [-list] [-v] [-json] [-escape-baseline] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosvet: %v\n", err)
		os.Exit(2)
	}
	modDir, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosvet: %v\n", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(modDir, modPath)

	if *escBaseline {
		keys, err := analysis.ComputeEscapeBaseline(loader, analysis.BOSEscapeCheck())
		if err != nil {
			fmt.Fprintf(os.Stderr, "bosvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Println("# Blessed heap escapes in //bos:hotpath functions; one \"pkgpath.Func: message\"")
		fmt.Println("# per line. Regenerate with `bosvet -escape-baseline`; CI fails on drift.")
		for _, k := range keys {
			fmt.Println(k)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	drv := &analysis.Driver{
		Loader:    loader,
		Analyzers: analyzers,
	}
	diags, err := drv.CheckPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosvet: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		names := make([]string, 0, len(drv.Timings))
		for name := range drv.Timings {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "bosvet: %-14s %v\n", name, drv.Timings[name])
		}
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
				file = rel
			}
			out = append(out, jsonDiag{File: file, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "bosvet: %v\n", err)
			os.Exit(2)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	if len(diags) > 0 {
		analysis.Print(os.Stdout, cwd, diags)
		os.Exit(1)
	}
}
