// Command bosinspect dumps the block structure of a bos stream: per block,
// the mode the planner chose (plain / bos / parts), the outlier counts, the
// class bit-widths alpha/beta/gamma and the encoded size. Use it to see what
// BOS is doing to your data.
//
//	boscli -c -in values.txt -out values.bos
//	bosinspect -in values.bos
//
// Pointed at a TSF2 file (an engine data-*.tsf), it prints the footer index
// instead: per series, each chunk's packer, time bounds, and the statistics
// block the compressed-domain query executor prunes with (count/min/max/sum).
//
//	bosinspect -in data/data-000001.tsf
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"bos/internal/core"
	"bos/internal/tsfile"
)

func main() {
	inPath := flag.String("in", "", "bos stream (default stdin)")
	flag.Parse()

	in := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	if err := inspect(os.Stdout, data); err != nil {
		fatal(err)
	}
}

// Stream constants mirroring the public bos package header.
const (
	magic0, magic1 = 0xB0, 0x51
	kindInt        = 0x00
	kindFloat      = 0x01
	kindFloatRaw   = 0x02
)

func inspect(w io.Writer, data []byte) error {
	if bytes.HasPrefix(data, []byte("TSF2")) {
		return inspectTSF(w, data)
	}
	if len(data) < 4 || data[0] != magic0 || data[1] != magic1 {
		// No stream header: try a bare segment file from bos.Writer.
		return inspectSegments(w, data)
	}
	if len(data) < 5 {
		return fmt.Errorf("truncated header")
	}
	kind, pipeline, post := data[2], data[3], data[4]
	rest := data[5:]
	blockSize, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("bad block size")
	}
	rest = rest[n:]
	kindName := map[byte]string{kindInt: "int", kindFloat: "float(scaled)", kindFloatRaw: "float(raw)"}[kind]
	pipeName := map[byte]string{0: "delta", 1: "raw", 2: "rle"}[pipeline]
	postName := map[byte]string{0: "none", 1: "lz4", 2: "range"}[post]
	fmt.Fprintf(w, "stream: kind=%s pipeline=%s post=%s blocksize=%d total=%d bytes\n",
		kindName, pipeName, postName, blockSize, len(data))
	if post != 0 {
		fmt.Fprintln(w, "entropy-coded payload (decode with boscli to inspect blocks)")
		return nil
	}
	if kind == kindFloat {
		p, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("bad precision")
		}
		fmt.Fprintf(w, "precision: 10^-%d\n", p)
		rest = rest[n:]
	}
	if kind == kindFloatRaw {
		fmt.Fprintln(w, "raw float payload (no blocks)")
		return nil
	}
	// All pipelines begin with a varint total count; rle adds a run count.
	total, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("bad count")
	}
	rest = rest[n:]
	fmt.Fprintf(w, "values: %d\n", total)
	expect := total
	if pipeline == 2 { // rle: value blocks hold nRuns values
		runs, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("bad run count")
		}
		rest = rest[n:]
		fmt.Fprintf(w, "runs: %d\n", runs)
		expect = runs
	}
	return dumpBlocks(w, rest, expect)
}

// dumpBlocks walks consecutive blocks until `expect` values are covered.
func dumpBlocks(w io.Writer, rest []byte, expect uint64) error {
	var seen uint64
	for i := 0; seen < expect && len(rest) > 0; i++ {
		info, r, err := core.InspectBlock(rest)
		if err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		printBlock(w, i, info)
		seen += uint64(info.N)
		rest = r
	}
	if seen < expect {
		return fmt.Errorf("stream ends after %d of %d values", seen, expect)
	}
	return nil
}

func printBlock(w io.Writer, i int, info core.BlockInfo) {
	switch info.Mode {
	case "bos":
		fmt.Fprintf(w, "block %3d: bos   n=%-5d nl=%-4d nu=%-4d a/b/g=%d/%d/%d xmin=%d minXc=%d minXu=%d %d bytes\n",
			i, info.N, info.NL, info.NU, info.Alpha, info.Beta, info.Gamma,
			info.Xmin, info.MinXc, info.MinXu, info.BodyBytes)
	case "parts":
		fmt.Fprintf(w, "block %3d: parts n=%-5d k=%d %d bytes\n", i, info.N, info.K, info.BodyBytes)
	default:
		fmt.Fprintf(w, "block %3d: plain n=%-5d width=%-2d xmin=%d %d bytes\n",
			i, info.N, info.Width, info.Xmin, info.BodyBytes)
	}
}

// inspectTSF prints a TSF2 file's footer index: per series, each chunk's
// layout and the per-chunk statistics block (count/min/max/sum) the pushdown
// executor answers aggregates from without decoding. Chunks written before
// the v2 footer print "stats=none" — queries fall back to full decode there.
func inspectTSF(w io.Writer, data []byte) error {
	r, err := tsfile.OpenReader(bytes.NewReader(data), int64(len(data)), tsfile.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tsfile: %d bytes, %d series\n", len(data), len(r.Series()))
	for _, name := range r.Series() {
		chunks, err := r.Chunks(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "series %q: %d chunks\n", name, len(chunks))
		for ci, m := range chunks {
			kind := map[byte]string{0: "int", 1: "scaled", 2: "raw"}[m.Kind]
			packer := m.Packer
			if packer == "" {
				packer = "default"
			}
			fmt.Fprintf(w, "  chunk %3d: %-6s packer=%-10s n=%-6d t=[%d,%d] %d bytes",
				ci, kind, packer, m.Count, m.MinT, m.MaxT, m.EncodedBytes)
			if m.HasStats {
				fmt.Fprintf(w, " stats: min=%d max=%d sum=%d\n", m.MinV, m.MaxV, m.Sum)
			} else {
				fmt.Fprintf(w, " stats=none\n")
			}
		}
	}
	return nil
}

// inspectSegments handles bos.Writer segment files: varint length + stream.
func inspectSegments(w io.Writer, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("empty input")
	}
	for i := 0; len(data) > 0; i++ {
		segLen, n := binary.Uvarint(data)
		if n <= 0 || segLen > uint64(len(data)-n) {
			return fmt.Errorf("not a bos stream or segment file")
		}
		fmt.Fprintf(w, "-- segment %d (%d bytes) --\n", i, segLen)
		if err := inspect(w, data[n:n+int(segLen)]); err != nil {
			return err
		}
		data = data[n+int(segLen):]
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bosinspect:", err)
	os.Exit(1)
}
