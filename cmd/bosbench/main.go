// Command bosbench regenerates the tables and figures of the BOS paper's
// evaluation (Section VIII) on the synthetic stand-in datasets.
//
// Usage:
//
//	bosbench -exp fig10a            # one experiment
//	bosbench -exp all -scale 0.25   # everything, quarter-size datasets
//
// Experiment ids: fig8 fig9 fig10a fig10b fig10c fig11 fig12 fig13 fig14
// fig15, or "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bos/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(harness.SortedIDs(), ", ")+", or all)")
	scale := flag.Float64("scale", 1.0, "dataset size multiplier")
	reps := flag.Int("reps", 3, "timing repetitions per measurement")
	flag.Parse()

	cfg := harness.Config{Scale: *scale, Reps: *reps}
	if err := harness.Run(*exp, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bosbench:", err)
		os.Exit(1)
	}
}
