// Command boscli compresses and decompresses series files with BOS.
//
// Input for compression is text: one integer (or decimal float with -float)
// per line. The compressed form is the self-describing bos stream format.
//
//	boscli -c -in values.txt -out values.bos -planner bosb -pipeline delta
//	boscli -d -in values.bos -out values.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"bos"
)

func main() {
	var (
		compress   = flag.Bool("c", false, "compress text input to a bos stream")
		decompress = flag.Bool("d", false, "decompress a bos stream to text")
		inPath     = flag.String("in", "", "input file (default stdin)")
		outPath    = flag.String("out", "", "output file (default stdout)")
		asFloat    = flag.Bool("float", false, "treat values as float64")
		planner    = flag.String("planner", "bosb", "planner: bosb, bosv, bosm, bp")
		pipeline   = flag.String("pipeline", "delta", "pipeline: delta, raw, rle")
		blockSize  = flag.Int("block", 0, "values per block (default 1024)")
	)
	flag.Parse()
	if *compress == *decompress {
		fatal(fmt.Errorf("exactly one of -c or -d is required"))
	}

	in, out := os.Stdin, os.Stdout
	var err error
	if *inPath != "" {
		if in, err = os.Open(*inPath); err != nil {
			fatal(err)
		}
		defer in.Close()
	}
	if *outPath != "" {
		if out, err = os.Create(*outPath); err != nil {
			fatal(err)
		}
		defer func() {
			if err := out.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	if *compress {
		opt, err := parseOptions(*planner, *pipeline, *blockSize)
		if err != nil {
			fatal(err)
		}
		if err := runCompress(in, out, opt, *asFloat); err != nil {
			fatal(err)
		}
		return
	}
	if err := runDecompress(in, out); err != nil {
		fatal(err)
	}
}

func parseOptions(planner, pipeline string, blockSize int) (bos.Options, error) {
	opt := bos.Options{BlockSize: blockSize}
	switch strings.ToLower(planner) {
	case "bosb", "bos-b":
		opt.Planner = bos.PlannerBitWidth
	case "bosv", "bos-v":
		opt.Planner = bos.PlannerValue
	case "bosm", "bos-m":
		opt.Planner = bos.PlannerMedian
	case "bp", "none":
		opt.Planner = bos.PlannerNone
	default:
		return opt, fmt.Errorf("unknown planner %q", planner)
	}
	switch strings.ToLower(pipeline) {
	case "delta":
		opt.Pipeline = bos.PipelineDelta
	case "raw":
		opt.Pipeline = bos.PipelineRaw
	case "rle":
		opt.Pipeline = bos.PipelineRLE
	default:
		return opt, fmt.Errorf("unknown pipeline %q", pipeline)
	}
	return opt, nil
}

func runCompress(in io.Reader, out io.Writer, opt bos.Options, asFloat bool) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var ints []int64
	var floats []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if asFloat {
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			floats = append(floats, v)
		} else {
			v, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			ints = append(ints, v)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	var enc []byte
	var n int
	if asFloat {
		enc = bos.CompressFloats(nil, floats, opt)
		n = len(floats)
	} else {
		enc = bos.Compress(nil, ints, opt)
		n = len(ints)
	}
	if _, err := out.Write(enc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "boscli: %d values -> %d bytes (ratio %.2f)\n",
		n, len(enc), float64(8*n)/float64(len(enc)))
	return nil
}

func runDecompress(in io.Reader, out io.Writer) error {
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	if ints, err := bos.Decompress(data); err == nil {
		for _, v := range ints {
			fmt.Fprintln(w, v)
		}
		return nil
	}
	floats, err := bos.DecompressFloats(data)
	if err != nil {
		return err
	}
	for _, v := range floats {
		fmt.Fprintln(w, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "boscli:", err)
	os.Exit(1)
}
