// Command bosdb runs the miniature IoTDB-style storage engine of
// internal/engine over a data directory: ingest CSV points (with WAL
// durability), query ranges, aggregate, compact, and report storage
// statistics — BOS working as the storage operator of an actual write/read
// path.
//
//	bosdb -dir ./data -ingest -in points.csv
//	bosdb -dir ./data -query -series root.d1.temp -from 0 -to 10000
//	bosdb -dir ./data -agg   -series root.d1.temp
//	bosdb -dir ./data -compact
//	bosdb -dir ./data -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"bos/internal/engine"
	"bos/internal/maintain"
	"bos/internal/packers"
	"bos/internal/tsfile"
)

func main() {
	var (
		dir      = flag.String("dir", "", "data directory (required)")
		ingest   = flag.Bool("ingest", false, "ingest CSV rows of series,timestamp,value")
		query    = flag.Bool("query", false, "query one series")
		agg      = flag.Bool("agg", false, "aggregate (count/min/max/sum) one series")
		compact  = flag.Bool("compact", false, "merge all data files into one")
		stats    = flag.Bool("stats", false, "print storage statistics")
		inPath   = flag.String("in", "", "CSV input for -ingest (default stdin)")
		series   = flag.String("series", "", "series name for -query/-agg")
		from     = flag.Int64("from", math.MinInt64, "minimum timestamp")
		to       = flag.Int64("to", math.MaxInt64, "maximum timestamp")
		packer   = flag.String("packer", "bosb", "packing operator: "+strings.Join(packers.Names(), ", "))
		adaptive = flag.Bool("adaptive", false, "-compact: repack each series with its cheapest operator")
	)
	flag.Parse()
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}
	modes := 0
	for _, m := range []bool{*ingest, *query, *agg, *compact, *stats} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fatal(fmt.Errorf("exactly one of -ingest, -query, -agg, -compact, -stats is required"))
	}
	p, err := packers.ByName(*packer)
	if err != nil {
		fatal(err)
	}
	e, err := engine.Open(engine.Options{Dir: *dir, File: tsfile.Options{Packer: p}})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			fatal(err)
		}
	}()

	switch {
	case *ingest:
		err = runIngest(e, *inPath)
	case *query:
		err = runQuery(e, *series, *from, *to)
	case *agg:
		err = runAgg(e, *series, *from, *to)
	case *compact:
		err = runCompact(e, *adaptive)
	default:
		st := e.Stats()
		fmt.Printf("files=%d series=%d disk_points=%d disk_bytes=%d mem_points=%d",
			st.Files, st.SeriesCount, st.DiskPoints, st.DiskBytes, st.MemPoints)
		if st.DiskPoints > 0 {
			fmt.Printf(" bytes/point=%.2f", float64(st.DiskBytes)/float64(st.DiskPoints))
		}
		fmt.Println()
	}
	if err != nil {
		fatal(err)
	}
}

func runIngest(e *engine.Engine, inPath string) error {
	in := os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line, total := 0, 0
	batch := map[string][]tsfile.Point{}
	flush := func() error {
		for s, pts := range batch {
			if err := e.InsertBatch(s, pts); err != nil {
				return err
			}
			total += len(pts)
		}
		batch = map[string][]tsfile.Point{}
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return fmt.Errorf("line %d: want series,timestamp,value", line)
		}
		t, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: timestamp: %w", line, err)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: value: %w", line, err)
		}
		name := strings.TrimSpace(parts[0])
		batch[name] = append(batch[name], tsfile.Point{T: t, V: v})
		if line%10000 == 0 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bosdb: ingested %d points\n", total)
	return nil
}

func runCompact(e *engine.Engine, adaptive bool) error {
	if !adaptive {
		return e.Compact()
	}
	m := maintain.New(e, maintain.Config{Adaptive: true})
	st, err := m.CompactAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bosdb: compacted %d files, %d series, %d -> %d bytes\n",
		st.Files, st.Series, st.BytesBefore, st.BytesAfter)
	for s, p := range st.SeriesPackers {
		fmt.Fprintf(os.Stderr, "bosdb:   %s -> %s\n", s, p)
	}
	return nil
}

func runQuery(e *engine.Engine, series string, from, to int64) error {
	if series == "" {
		return fmt.Errorf("-series is required")
	}
	pts, err := e.Query(series, from, to)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%d\n", p.T, p.V)
	}
	fmt.Fprintf(os.Stderr, "bosdb: %d points\n", len(pts))
	return nil
}

func runAgg(e *engine.Engine, series string, from, to int64) error {
	if series == "" {
		return fmt.Errorf("-series is required")
	}
	pts, err := e.Query(series, from, to)
	if err != nil {
		return err
	}
	if len(pts) == 0 {
		fmt.Println("count=0")
		return nil
	}
	min, max, sum := pts[0].V, pts[0].V, int64(0)
	for _, p := range pts {
		if p.V < min {
			min = p.V
		}
		if p.V > max {
			max = p.V
		}
		sum += p.V
	}
	fmt.Printf("count=%d min=%d max=%d sum=%d avg=%.2f\n",
		len(pts), min, max, sum, float64(sum)/float64(len(pts)))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bosdb:", err)
	os.Exit(1)
}
