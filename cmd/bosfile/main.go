// Command bosfile writes and queries the miniature TsFile-style block files
// of internal/tsfile, with BOS (or a baseline packer) as the storage
// operator — the deployment shape of Section VII of the paper.
//
// Ingest CSV rows of `series,timestamp,value` and query back:
//
//	bosfile -write -in samples.csv -file data.tsf -packer bosb
//	bosfile -query -file data.tsf -series root.d1.temp -from 0 -to 5000
//	bosfile -stats -file data.tsf
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"bos/internal/packers"
	"bos/internal/tsfile"
)

func main() {
	var (
		write  = flag.Bool("write", false, "ingest CSV (series,timestamp,value) into a new file")
		query  = flag.Bool("query", false, "query one series")
		stats  = flag.Bool("stats", false, "print per-series chunk statistics")
		inPath = flag.String("in", "", "CSV input for -write (default stdin)")
		file   = flag.String("file", "", "block file path (required)")
		series = flag.String("series", "", "series name for -query")
		from   = flag.Int64("from", math.MinInt64, "minimum timestamp for -query")
		to     = flag.Int64("to", math.MaxInt64, "maximum timestamp for -query")
		minV   = flag.Int64("minv", math.MinInt64, "minimum value for -query")
		maxV   = flag.Int64("maxv", math.MaxInt64, "maximum value for -query")
		packer = flag.String("packer", "bosb", "packing operator: "+strings.Join(packers.Names(), ", "))
		chunk  = flag.Int("chunk", 4096, "points per chunk when writing")
	)
	flag.Parse()
	if *file == "" {
		fatal(fmt.Errorf("-file is required"))
	}
	modes := 0
	for _, m := range []bool{*write, *query, *stats} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fatal(fmt.Errorf("exactly one of -write, -query, -stats is required"))
	}
	opt, err := options(*packer)
	if err != nil {
		fatal(err)
	}
	switch {
	case *write:
		err = runWrite(*inPath, *file, opt, *chunk)
	case *query:
		if *series == "" {
			fatal(fmt.Errorf("-series is required with -query"))
		}
		err = runQuery(*file, opt, *series, *from, *to, *minV, *maxV)
	default:
		err = runStats(*file, opt)
	}
	if err != nil {
		fatal(err)
	}
}

func options(packer string) (tsfile.Options, error) {
	p, err := packers.ByName(packer)
	if err != nil {
		return tsfile.Options{}, err
	}
	return tsfile.Options{Packer: p}, nil
}

func runWrite(inPath, filePath string, opt tsfile.Options, chunk int) error {
	in := os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	out, err := os.Create(filePath)
	if err != nil {
		return err
	}
	defer out.Close()

	bw := bufio.NewWriter(out)
	w := tsfile.NewWriter(bw, opt)
	// CSV rows must be grouped by series and time-ordered within each.
	pending := map[string][]tsfile.Point{}
	var total int
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	flushSeries := func(name string) error {
		if len(pending[name]) == 0 {
			return nil
		}
		if err := w.Append(name, pending[name]); err != nil {
			return err
		}
		total += len(pending[name])
		pending[name] = pending[name][:0]
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return fmt.Errorf("line %d: want series,timestamp,value", line)
		}
		name := strings.TrimSpace(parts[0])
		t, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: timestamp: %w", line, err)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: value: %w", line, err)
		}
		pending[name] = append(pending[name], tsfile.Point{T: t, V: v})
		if len(pending[name]) >= chunk {
			if err := flushSeries(name); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name := range pending {
		if err := flushSeries(name); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	info, err := out.Stat()
	if err == nil {
		fmt.Fprintf(os.Stderr, "bosfile: %d points -> %d bytes (%.2f B/point)\n",
			total, info.Size(), float64(info.Size())/float64(total))
	}
	return nil
}

func runQuery(filePath string, opt tsfile.Options, series string, from, to, minV, maxV int64) error {
	r, size, err := openFile(filePath)
	if err != nil {
		return err
	}
	defer r.Close()
	tr, err := tsfile.OpenReader(r, size, opt)
	if err != nil {
		return err
	}
	pts, err := tr.Query(series, from, to, minV, maxV)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%d\n", p.T, p.V)
	}
	fmt.Fprintf(os.Stderr, "bosfile: %d points\n", len(pts))
	return nil
}

func runStats(filePath string, opt tsfile.Options) error {
	r, size, err := openFile(filePath)
	if err != nil {
		return err
	}
	defer r.Close()
	tr, err := tsfile.OpenReader(r, size, opt)
	if err != nil {
		return err
	}
	for _, s := range tr.Series() {
		chunks, err := tr.Chunks(s)
		if err != nil {
			return err
		}
		var points, bytes int
		for _, c := range chunks {
			points += c.Count
			bytes += c.EncodedBytes
		}
		fmt.Printf("%-30s %3d chunks %8d points %9d bytes (%.2f B/point)\n",
			s, len(chunks), points, bytes, float64(bytes)/float64(points))
	}
	return nil
}

func openFile(path string) (*os.File, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, info.Size(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bosfile:", err)
	os.Exit(1)
}
