package bos

// One benchmark per table/figure of the paper's evaluation (Section VIII).
// Each benchmark executes the same experiment code path that `bosbench -exp
// <id>` uses to print the figure, at a reduced dataset scale so the whole
// suite finishes in minutes; run `go run ./cmd/bosbench -exp all` for the
// full-size text renditions recorded in EXPERIMENTS.md.

import (
	"io"
	"testing"

	"bos/internal/harness"
)

// benchCfg keeps per-iteration work bounded: ~2048 values per dataset, one
// timing repetition.
var benchCfg = harness.Config{Scale: 0.02, Reps: 1}

func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		harness.ResetGridCache() // measure regeneration, not cache hits
		if err := harness.Run(id, io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure08 regenerates the post-TS2DIFF value distributions.
func BenchmarkFigure08(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFigure09 regenerates the outlier-percentage chart.
func BenchmarkFigure09(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFigure10a regenerates the compression-ratio table.
func BenchmarkFigure10a(b *testing.B) { benchExperiment(b, "fig10a") }

// BenchmarkFigure10b regenerates the ratio-vs-time summary.
func BenchmarkFigure10b(b *testing.B) { benchExperiment(b, "fig10b") }

// BenchmarkFigure10c regenerates the compression/decompression time tables.
func BenchmarkFigure10c(b *testing.B) { benchExperiment(b, "fig10c") }

// BenchmarkFigure11 regenerates the storage/query-cost comparison.
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFigure12 regenerates the upper-only ablation.
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFigure13 regenerates the LZ4/7Z/DCT/FFT complementarity study.
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFigure14 regenerates the parts sweep.
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFigure15 regenerates the block-size scalability sweep.
func BenchmarkFigure15(b *testing.B) { benchExperiment(b, "fig15") }
